//! Cache geometry and address slicing.
//!
//! Addresses are byte addresses (`u64`). Caches operate on [`LineAddr`]s —
//! the byte address with the intra-line offset stripped — so that tag
//! comparison and set indexing never have to re-derive the line base.

/// A cache-line address: the byte address shifted right by the line-offset
/// bits. Two byte addresses within the same cache line map to the same
/// `LineAddr`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LineAddr(pub u64);

impl LineAddr {
    /// Reconstruct the base byte address of this line given the line size.
    #[inline]
    pub fn byte_base(self, line_bytes: usize) -> u64 {
        self.0 << line_bytes.trailing_zeros()
    }
}

/// Geometry of one set-associative cache.
///
/// All three parameters must be powers of two; `size_bytes` must be at
/// least `line_bytes * assoc` (one set).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Geometry {
    /// Total capacity in bytes.
    pub size_bytes: usize,
    /// Line (block) size in bytes.
    pub line_bytes: usize,
    /// Associativity (ways per set).
    pub assoc: usize,
}

impl Geometry {
    /// Create a geometry, validating power-of-two and sizing constraints.
    ///
    /// # Panics
    /// Panics if any parameter is zero or not a power of two, or if the
    /// cache cannot hold at least one full set.
    pub fn new(size_bytes: usize, line_bytes: usize, assoc: usize) -> Self {
        assert!(size_bytes.is_power_of_two(), "cache size must be a power of two");
        assert!(line_bytes.is_power_of_two(), "line size must be a power of two");
        assert!(assoc.is_power_of_two(), "associativity must be a power of two");
        assert!(
            size_bytes >= line_bytes * assoc,
            "cache must hold at least one set ({} < {} * {})",
            size_bytes,
            line_bytes,
            assoc
        );
        Self { size_bytes, line_bytes, assoc }
    }

    /// Number of sets.
    #[inline]
    pub fn sets(&self) -> usize {
        self.size_bytes / (self.line_bytes * self.assoc)
    }

    /// Total number of line slots (sets × ways).
    #[inline]
    pub fn lines(&self) -> usize {
        self.size_bytes / self.line_bytes
    }

    /// Bits used for the intra-line byte offset.
    #[inline]
    pub fn offset_bits(&self) -> u32 {
        self.line_bytes.trailing_zeros()
    }

    /// Convert a byte address to a line address.
    #[inline]
    pub fn line_of(&self, byte_addr: u64) -> LineAddr {
        LineAddr(byte_addr >> self.offset_bits())
    }

    /// Set index for a line address.
    #[inline]
    pub fn set_index(&self, line: LineAddr) -> usize {
        (line.0 as usize) & (self.sets() - 1)
    }

    /// Flat slot id of (set, way); stable across the run, used to index
    /// per-line side structures such as decay counters.
    #[inline]
    pub fn slot(&self, set: usize, way: usize) -> usize {
        set * self.assoc + way
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_derives_sets_and_lines() {
        let g = Geometry::new(1 << 20, 64, 8); // 1 MiB, 64 B lines, 8-way
        assert_eq!(g.sets(), 2048);
        assert_eq!(g.lines(), 16384);
        assert_eq!(g.offset_bits(), 6);
    }

    #[test]
    fn line_addresses_strip_offsets() {
        let g = Geometry::new(1 << 16, 64, 4);
        assert_eq!(g.line_of(0x1000), g.line_of(0x103F));
        assert_ne!(g.line_of(0x1000), g.line_of(0x1040));
        assert_eq!(g.line_of(0x1040).byte_base(64), 0x1040);
    }

    #[test]
    fn set_index_wraps_modulo_sets() {
        let g = Geometry::new(1 << 16, 64, 4); // 256 sets
        let a = g.line_of(0);
        let b = g.line_of((256 * 64) as u64); // one full wrap
        assert_eq!(g.set_index(a), g.set_index(b));
        assert_ne!(a, b);
    }

    #[test]
    fn slot_ids_are_dense_and_unique() {
        let g = Geometry::new(1 << 14, 64, 4);
        let mut seen = vec![false; g.lines()];
        for set in 0..g.sets() {
            for way in 0..g.assoc {
                let s = g.slot(set, way);
                assert!(!seen[s], "slot {s} duplicated");
                seen[s] = true;
            }
        }
        assert!(seen.iter().all(|&x| x));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two_size() {
        Geometry::new(3 << 10, 64, 4);
    }

    #[test]
    #[should_panic(expected = "at least one set")]
    fn rejects_degenerate_geometry() {
        Geometry::new(128, 64, 4);
    }
}
