//! Coalescing write buffer.
//!
//! The paper's L1 caches are write-through with a write buffer that
//! propagates stores to the L2 (Fig. 1). Table I's turn-off legality also
//! depends on it: a clean L2 line may only be turned off *if no pending
//! write* to it sits in the buffer, so the buffer exposes a
//! [`WriteBuffer::has_pending`] probe used by the turn-off mechanism.
//!
//! Stores to a line already buffered coalesce into the existing entry
//! (standard write-combining), so a store burst to one line costs a single
//! L2 write port slot.

use crate::addr::LineAddr;
use std::collections::VecDeque;

/// Activity counters for sizing studies and energy accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WriteBufferStats {
    /// Stores accepted.
    pub stores: u64,
    /// Stores that coalesced into an existing entry.
    pub coalesced: u64,
    /// Entries drained to the next level.
    pub drained: u64,
    /// Cycles in which a store stalled because the buffer was full.
    pub full_stalls: u64,
}

/// FIFO write buffer with per-line coalescing.
#[derive(Debug, Clone)]
pub struct WriteBuffer {
    fifo: VecDeque<LineAddr>,
    capacity: usize,
    stats: WriteBufferStats,
}

impl WriteBuffer {
    /// A buffer holding up to `capacity` distinct lines.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0);
        Self {
            fifo: VecDeque::with_capacity(capacity),
            capacity,
            stats: WriteBufferStats::default(),
        }
    }

    /// Entries currently buffered.
    #[inline]
    pub fn len(&self) -> usize {
        self.fifo.len()
    }

    /// True when nothing is buffered.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.fifo.is_empty()
    }

    /// True when no further non-coalescing store can be accepted.
    #[inline]
    pub fn is_full(&self) -> bool {
        self.fifo.len() >= self.capacity
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> WriteBufferStats {
        self.stats
    }

    /// Whether a write to `line` is pending (used by the turn-off
    /// legality checks of Table I).
    pub fn has_pending(&self, line: LineAddr) -> bool {
        self.fifo.contains(&line)
    }

    /// Whether [`WriteBuffer::push`] for `line` would return `false` —
    /// the non-mutating mirror of its rejection condition (full and not
    /// coalescing). The quiescence-skipping kernel uses it to prove a
    /// store-retrying core stays blocked while the buffer cannot drain.
    pub fn store_would_refuse(&self, line: LineAddr) -> bool {
        self.is_full() && !self.fifo.contains(&line)
    }

    /// Account `cycles` refused pushes in one step: the statistics that
    /// many calls to [`WriteBuffer::push`] in a full, non-coalescing
    /// state would have accrued (one full-stall each). Used when a
    /// blocked span is skipped instead of stepped.
    pub fn charge_full_stalls(&mut self, cycles: u64) {
        self.stats.full_stalls += cycles;
    }

    /// Try to accept a store to `line`. Returns `false` (and counts a
    /// stall) when the buffer is full and the store does not coalesce.
    pub fn push(&mut self, line: LineAddr) -> bool {
        if self.fifo.contains(&line) {
            self.stats.stores += 1;
            self.stats.coalesced += 1;
            return true;
        }
        if self.is_full() {
            self.stats.full_stalls += 1;
            return false;
        }
        self.stats.stores += 1;
        self.fifo.push_back(line);
        true
    }

    /// Oldest buffered line, without removing it.
    pub fn head(&self) -> Option<LineAddr> {
        self.fifo.front().copied()
    }

    /// Drain the oldest entry (the embedding model calls this when the L2
    /// write port accepts it).
    pub fn pop(&mut self) -> Option<LineAddr> {
        let head = self.fifo.pop_front();
        if head.is_some() {
            self.stats.drained += 1;
        }
        head
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_preserved() {
        let mut wb = WriteBuffer::new(4);
        assert!(wb.push(LineAddr(1)));
        assert!(wb.push(LineAddr(2)));
        assert_eq!(wb.pop(), Some(LineAddr(1)));
        assert_eq!(wb.pop(), Some(LineAddr(2)));
        assert_eq!(wb.pop(), None);
    }

    #[test]
    fn stores_to_same_line_coalesce() {
        let mut wb = WriteBuffer::new(2);
        assert!(wb.push(LineAddr(5)));
        assert!(wb.push(LineAddr(5)));
        assert_eq!(wb.len(), 1);
        assert_eq!(wb.stats().coalesced, 1);
    }

    #[test]
    fn full_buffer_rejects_and_counts_stall() {
        let mut wb = WriteBuffer::new(1);
        assert!(wb.push(LineAddr(1)));
        assert!(!wb.push(LineAddr(2)));
        assert_eq!(wb.stats().full_stalls, 1);
        // Coalescing still allowed at capacity.
        assert!(wb.push(LineAddr(1)));
    }

    #[test]
    fn pending_probe_sees_buffered_lines() {
        let mut wb = WriteBuffer::new(4);
        wb.push(LineAddr(9));
        assert!(wb.has_pending(LineAddr(9)));
        assert!(!wb.has_pending(LineAddr(8)));
        wb.pop();
        assert!(!wb.has_pending(LineAddr(9)));
    }
}
