//! Memory-structure substrate for the CMP leakage simulator.
//!
//! This crate provides the building blocks that the L1/L2 cache models in
//! `cmpleak-system` are assembled from:
//!
//! * [`Geometry`] / [`addr`] — cache geometry and address slicing,
//! * [`SetAssocArray`] — a generic set-associative tag array with true-LRU
//!   replacement and stable flat slot identifiers,
//! * [`Mshr`] — miss-status holding registers with secondary-miss merging,
//! * [`WriteBuffer`] — a coalescing store buffer (the write-through L1 in
//!   the paper propagates stores through one of these),
//! * [`DecayBank`] — the hierarchical cache-decay counter architecture of
//!   Kaxiras et al. (global tick + small saturating per-line counters),
//!   extended with a per-line *armed* bit so Selective Decay can restrict
//!   which lines are allowed to decay,
//! * [`ShadowTags`] — an always-on shadow tag directory used to classify
//!   decay-induced misses (a miss that would have hit had no line ever
//!   been turned off),
//! * [`LineStateBank`] / [`BankArena`] — the columnar per-line state
//!   layer: word-packed `u64` bitsets for the powered/armed/live bits
//!   (popcount counting, `u64×4` chunked scans) plus dense
//!   timestamp/counter columns, all checked out of an arena that reuses
//!   the multi-MB allocations across simulations.
//!
//! Everything here is deterministic and allocation-free on the hot path;
//! structures are sized once at construction (see the workspace DESIGN.md
//! and the hpc-parallel guide notes on avoiding allocation in hot loops).

#![forbid(unsafe_code)]

pub mod addr;
pub mod array;
pub mod bank;
pub mod decay;
pub mod mshr;
pub mod shadow;
pub mod write_buffer;

pub use addr::{Geometry, LineAddr};
pub use array::{LineView, LookupOutcome, SetAssocArray};
pub use bank::{ArenaStats, BankArena, BitSet, LineStateBank};
pub use decay::{DecayBank, DecayConfig, DecayStats};
pub use mshr::{Mshr, MshrAlloc, MshrEntry};
pub use shadow::ShadowTags;
pub use write_buffer::{WriteBuffer, WriteBufferStats};
