//! Hierarchical cache-decay counter bank (Kaxiras et al., ISCA'01),
//! extended for coherent caches.
//!
//! The hardware the paper assumes is a two-level counter architecture: one
//! **global cycle counter** that emits a *tick* every
//! `decay_time / 2^counter_bits` cycles, and a small saturating counter per
//! cache line. On every tick all per-line counters increment; a counter
//! that saturates marks its line as *decayed* and a turn-off request is
//! raised for it. Any access to the line resets its counter.
//!
//! Two extensions serve the paper's techniques:
//!
//! * an **armed bit** per line — Selective Decay arms decay only on
//!   transitions into Shared/Exclusive and disarms it on transitions into
//!   Modified, so M lines never decay;
//! * **activity accounting** (`DecayStats`) — every increment and reset is
//!   counted so `cmpleak-power` can charge the decay logic's dynamic
//!   energy, and the counter storage contributes leakage.
//!
//! The per-line state itself — armed/live bits, saturating counters —
//! lives in the columnar [`LineStateBank`]; `DecayBank` holds only the
//! global-counter state (tick clock, activity stats) and the tick
//! *policy*. The tick scan walks the bank's `live & armed` words in
//! `u64×4` chunks, so a multi-MB cache with a small live set skips idle
//! regions 256 lines per comparison instead of testing two `Vec<bool>`s
//! line by line.
//!
//! Slots are the flat slot ids of `cmpleak_mem::SetAssocArray`.

use crate::bank::LineStateBank;

/// Configuration for one decay counter bank.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecayConfig {
    /// Target decay interval in cycles. A line decays after being unused
    /// for `decay_cycles` (quantised up by the tick period: the effective
    /// interval for a given line is between `decay_cycles` and
    /// `decay_cycles + tick_period`, exactly as in the hierarchical
    /// hardware scheme).
    pub decay_cycles: u64,
    /// Width of the per-line saturating counter (the paper assumes 2 bits).
    pub counter_bits: u32,
}

impl DecayConfig {
    /// Standard 2-bit configuration used throughout the paper.
    pub fn fixed(decay_cycles: u64) -> Self {
        Self { decay_cycles, counter_bits: 2 }
    }

    /// Cycles between global ticks.
    #[inline]
    pub fn tick_period(&self) -> u64 {
        let steps = 1u64 << self.counter_bits;
        (self.decay_cycles / steps).max(1)
    }

    /// Number of ticks after which an untouched line is considered
    /// decayed. A `b`-bit counter decays its line on the `2^b`-th tick
    /// (the saturating transition), so the effective per-line interval is
    /// in `(decay_cycles - tick_period, decay_cycles]` depending on the
    /// phase of the last access relative to the global tick.
    #[inline]
    pub fn saturation(&self) -> u8 {
        (1u64 << self.counter_bits).min(u8::MAX as u64) as u8
    }
}

/// Activity counters for energy accounting and tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DecayStats {
    /// Global ticks elapsed.
    pub ticks: u64,
    /// Per-line counter increments performed (dynamic energy events).
    pub increments: u64,
    /// Counter resets due to line accesses.
    pub resets: u64,
    /// Lines reported as decayed (turn-off requests raised).
    pub decays: u64,
}

/// The global decay counter and tick policy for one cache.
///
/// Per-line storage (armed/live bits, counters) is the caller-owned
/// [`LineStateBank`] passed to every operation; the same bank also
/// carries the cache's Gated-Vdd state, so all per-line columns share
/// one arena-backed allocation.
#[derive(Debug, Clone)]
pub struct DecayBank {
    cfg: DecayConfig,
    next_tick: u64,
    stats: DecayStats,
}

impl DecayBank {
    /// A decay clock with per-line state expected in the neutral
    /// [`LineStateBank`] start: all lines *not live* (nothing decays
    /// until a fill arms them) and *armed* (plain fixed decay lets every
    /// line decay; Selective Decay manipulates armed bits explicitly).
    pub fn new(cfg: DecayConfig) -> Self {
        assert!(cfg.counter_bits >= 1 && cfg.counter_bits <= 8, "counter bits in 1..=8");
        assert!(cfg.decay_cycles > 0, "decay interval must be positive");
        Self { next_tick: cfg.tick_period(), cfg, stats: DecayStats::default() }
    }

    /// The configuration in effect.
    pub fn config(&self) -> DecayConfig {
        self.cfg
    }

    /// Accumulated activity statistics.
    pub fn stats(&self) -> DecayStats {
        self.stats
    }

    /// Cycle at which the next global tick fires.
    #[inline]
    pub fn next_tick_at(&self) -> u64 {
        self.next_tick
    }

    /// A line was accessed (hit or filled): reset its counter and mark it
    /// live so it participates in future ticks.
    #[inline]
    pub fn on_access(&mut self, st: &mut LineStateBank, slot: usize) {
        if st.counter(slot) != 0 {
            self.stats.resets += 1;
        }
        st.set_counter(slot, 0);
        st.set_live(slot);
    }

    /// The line was turned off or protocol-invalidated: stop counting it.
    #[inline]
    pub fn on_line_off(&mut self, st: &mut LineStateBank, slot: usize) {
        st.clear_live(slot);
        st.set_counter(slot, 0);
    }

    /// Advance to `now`, performing any global ticks that have become due,
    /// and append the slots that decayed to `decayed`.
    ///
    /// Multiple pending ticks (if the caller advanced time coarsely) are
    /// processed in order; per-tick semantics are identical to hardware
    /// scanning all counters on the tick edge. This is the sequential
    /// reference that [`DecayBank::advance_to`] must match exactly.
    pub fn advance(&mut self, st: &mut LineStateBank, now: u64, decayed: &mut Vec<usize>) {
        while self.next_tick <= now {
            self.tick(st, decayed);
            self.next_tick += self.cfg.tick_period();
        }
    }

    /// Advance to `now` in closed form: all `k` due ticks are applied in
    /// one pass over the counters instead of `k` sequential scans.
    ///
    /// Per slot, `k` ticks increment a live, armed counter `c` by
    /// `min(k, sat − c)` — increments stop at saturation — and the slot
    /// decays on tick number `sat − c`, at which point it stops being
    /// live. `DecayStats` accounting (`ticks`, `increments`, `decays`)
    /// and the decayed-slot emission order — `(tick, slot)`
    /// lexicographic, because each sequential tick scans slots in index
    /// order — are identical to [`DecayBank::advance`]; the equivalence
    /// is property-tested in `tests/properties.rs`.
    pub fn advance_to(&mut self, st: &mut LineStateBank, now: u64, decayed: &mut Vec<usize>) {
        if self.next_tick > now {
            return;
        }
        let period = self.cfg.tick_period();
        let k = (now - self.next_tick) / period + 1;
        self.next_tick += k * period;
        if k == 1 {
            // Common case (the caller advances every cycle or wakes at
            // each tick): one ordinary tick, no sort needed.
            self.tick(st, decayed);
            return;
        }
        self.stats.ticks += k;
        let sat = self.cfg.saturation();
        let mut newly: Vec<(u64, usize)> = Vec::new();
        self.scan_tickable(st, |this, st, slot| {
            let c = st.counter(slot);
            if c >= sat {
                return;
            }
            let room = u64::from(sat - c);
            let applied = room.min(k);
            st.set_counter(slot, c + applied as u8);
            this.stats.increments += applied;
            if applied == room {
                st.clear_live(slot);
                this.stats.decays += 1;
                newly.push((room, slot));
            }
        });
        // Stable sort by decay tick: slots visited in index order, so
        // ties keep index order — the per-tick scan's emission order.
        newly.sort_by_key(|&(tick_no, _)| tick_no);
        decayed.extend(newly.into_iter().map(|(_, slot)| slot));
    }

    /// Perform one global tick: increment every live, armed counter;
    /// saturated counters decay their line.
    ///
    /// The hot path of every decay simulation: hand-specialised over the
    /// packed words rather than routed through
    /// [`DecayBank::scan_tickable`]'s callback. Fully tickable words
    /// take a slice fast path that splits the counter walk (a branchless
    /// `+1` over 64 bytes — live∧armed implies unsaturated, an invariant
    /// this bank maintains itself) from saturation detection (a separate
    /// equality scan), so both passes auto-vectorize and the 100 %-live
    /// corner beats the naive per-line loop instead of trailing it —
    /// semantics identical to the sequential per-slot scan.
    fn tick(&mut self, st: &mut LineStateBank, decayed: &mut Vec<usize>) {
        self.stats.ticks += 1;
        let sat = self.cfg.saturation();
        let nw = st.word_count();
        let mut w = 0;
        while w < nw {
            let end = (w + 4).min(nw);
            let mut any = 0u64;
            for i in w..end {
                any |= st.tickable_word(i);
            }
            if any == 0 {
                w = end;
                continue;
            }
            for i in w..end {
                let mut bits = st.tickable_word(i);
                if bits == !0u64 {
                    let base = i * 64;
                    // Dense fast path, split into two passes. The
                    // counter walk is a branchless byte add with a
                    // running max — a live, armed counter is always
                    // below saturation (the bank's own bookkeeping
                    // guarantees it: saturation clears the live bit,
                    // accesses reset to zero), so no per-slot guard is
                    // needed and the loop vectorizes to packed add/max.
                    let col = &mut st.counters_mut()[base..base + 64];
                    let mut mx = 0u8;
                    for c in col.iter_mut() {
                        debug_assert!(*c < sat, "live+armed counter at/past saturation");
                        *c += 1;
                        mx = mx.max(*c);
                    }
                    self.stats.increments += 64;
                    // Saturation detection runs only on the (rare)
                    // ticks where the max reached the ceiling: collect
                    // the saturated slots as a bitmask, resolve after.
                    if mx >= sat {
                        let mut saturated = 0u64;
                        for (j, &c) in col.iter().enumerate() {
                            saturated |= u64::from(c == sat) << j;
                        }
                        while saturated != 0 {
                            let slot = base + saturated.trailing_zeros() as usize;
                            saturated &= saturated - 1;
                            st.clear_live(slot);
                            self.stats.decays += 1;
                            decayed.push(slot);
                        }
                    }
                    continue;
                }
                while bits != 0 {
                    let slot = i * 64 + bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    let c = st.counter(slot);
                    if c < sat {
                        let c = c + 1;
                        st.set_counter(slot, c);
                        self.stats.increments += 1;
                        if c == sat {
                            st.clear_live(slot);
                            self.stats.decays += 1;
                            decayed.push(slot);
                        }
                    }
                }
            }
            w = end;
        }
    }

    /// Visit every `live & armed` slot in ascending order, walking the
    /// packed words in `u64×4` chunks so fully idle regions cost one OR
    /// per 256 lines. Clearing the visited slot's live bit inside `f`
    /// does not disturb the iteration (each word is snapshotted), which
    /// is exactly the per-tick hardware semantics: the scan mask is
    /// sampled at the tick edge.
    fn scan_tickable(
        &mut self,
        st: &mut LineStateBank,
        mut f: impl FnMut(&mut Self, &mut LineStateBank, usize),
    ) {
        let nw = st.word_count();
        let mut w = 0;
        while w < nw {
            let end = (w + 4).min(nw);
            let mut any = 0u64;
            for i in w..end {
                any |= st.tickable_word(i);
            }
            if any != 0 {
                for i in w..end {
                    let mut bits = st.tickable_word(i);
                    if bits == !0u64 {
                        // Dense fast path: a fully tickable word visits
                        // its 64 slots directly, skipping the per-bit
                        // extraction chain. `f` may clear live bits; the
                        // snapshot semantics are unchanged (every slot of
                        // the sampled mask is visited exactly once).
                        for slot in i * 64..i * 64 + 64 {
                            f(self, st, slot);
                        }
                        continue;
                    }
                    while bits != 0 {
                        let slot = i * 64 + bits.trailing_zeros() as usize;
                        bits &= bits - 1;
                        f(self, st, slot);
                    }
                }
            }
            w = end;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Fixture {
        bank: DecayBank,
        st: LineStateBank,
    }

    fn fx(lines: usize, cfg: DecayConfig) -> Fixture {
        Fixture { bank: DecayBank::new(cfg), st: LineStateBank::new(lines) }
    }

    impl Fixture {
        fn drain(&mut self, now: u64) -> Vec<usize> {
            let mut v = Vec::new();
            self.bank.advance(&mut self.st, now, &mut v);
            v
        }

        fn access(&mut self, slot: usize) {
            self.bank.on_access(&mut self.st, slot);
        }
    }

    #[test]
    fn tick_period_divides_decay_interval() {
        let cfg = DecayConfig::fixed(512_000);
        assert_eq!(cfg.tick_period(), 128_000);
        assert_eq!(cfg.saturation(), 4);
    }

    #[test]
    fn untouched_live_line_decays_after_interval() {
        let mut f = fx(4, DecayConfig::fixed(4000));
        f.access(2);
        // After 3 ticks (3000 cycles) not yet decayed; 4th tick saturates.
        assert!(f.drain(3000).is_empty());
        let d = f.drain(4000);
        assert_eq!(d, vec![2]);
        assert_eq!(f.bank.stats().decays, 1);
    }

    #[test]
    fn access_resets_the_countdown() {
        let mut f = fx(1, DecayConfig::fixed(4000));
        f.access(0);
        assert!(f.drain(3000).is_empty());
        f.access(0); // reset at t=3000, on a tick boundary
        assert!(f.drain(6000).is_empty(), "reset must defer decay");
        let d = f.drain(7000);
        assert_eq!(d, vec![0]);
    }

    #[test]
    fn non_live_lines_never_decay() {
        let mut f = fx(2, DecayConfig::fixed(1000));
        // Slot 0 never accessed (not live); slot 1 accessed then turned off.
        f.access(1);
        let (bank, st) = (&mut f.bank, &mut f.st);
        bank.on_line_off(st, 1);
        assert!(f.drain(100_000).is_empty());
        assert_eq!(f.bank.stats().decays, 0);
    }

    #[test]
    fn disarmed_lines_hold_without_decaying() {
        let mut f = fx(1, DecayConfig::fixed(1000));
        f.access(0);
        f.st.disarm(0);
        assert!(f.drain(10_000).is_empty());
        f.st.arm(0);
        // Counter was frozen at 0; decays one full interval after rearming.
        let d = f.drain(11_000);
        assert_eq!(d, vec![0]);
    }

    #[test]
    fn decayed_line_does_not_redecay_until_reaccessed() {
        let mut f = fx(1, DecayConfig::fixed(1000));
        f.access(0);
        assert_eq!(f.drain(1000), vec![0]);
        assert!(f.drain(50_000).is_empty());
        f.access(0);
        assert_eq!(f.drain(51_000), vec![0]);
    }

    #[test]
    fn effective_interval_quantised_within_one_tick() {
        // Access mid-way between ticks: the first tick arrives early, so
        // the effective interval is nominal minus the access phase —
        // within one tick period of nominal, exactly as in the
        // hierarchical-counter hardware.
        let mut f = fx(1, DecayConfig::fixed(4000)); // ticks at 1000, 2000, ...
        f.drain(1500);
        f.access(0); // t = 1500; counter ticks at 2000/3000/4000/5000
        assert!(f.drain(4999).is_empty());
        assert_eq!(f.drain(5000), vec![0]);
    }

    #[test]
    fn stats_count_increments_and_resets() {
        let mut f = fx(2, DecayConfig::fixed(4000));
        f.access(0);
        f.access(1);
        f.drain(2000); // two ticks: 2 increments per live line
        assert_eq!(f.bank.stats().increments, 4);
        f.access(0); // nonzero counter -> reset counted
        assert_eq!(f.bank.stats().resets, 1);
    }

    #[test]
    fn advance_to_matches_sequential_ticks_including_order() {
        let cfg = DecayConfig::fixed(4000); // tick every 1000
        let mut seq = fx(8, cfg);
        let mut bulk = fx(8, cfg);
        // Stagger accesses so slots saturate on different ticks, and
        // disarm one slot to exercise the armed gate.
        for (slot, t) in [(3usize, 0u64), (1, 0), (6, 1000), (0, 2000)] {
            let mut v = Vec::new();
            seq.bank.advance(&mut seq.st, t, &mut v);
            let mut w = Vec::new();
            bulk.bank.advance_to(&mut bulk.st, t, &mut w);
            assert_eq!(v, w);
            seq.access(slot);
            bulk.access(slot);
        }
        seq.st.disarm(1);
        bulk.st.disarm(1);
        let mut v = Vec::new();
        seq.bank.advance(&mut seq.st, 20_000, &mut v);
        let mut w = Vec::new();
        bulk.bank.advance_to(&mut bulk.st, 20_000, &mut w);
        assert_eq!(v, w, "bulk advance must emit the same slots in the same order");
        assert_eq!(seq.bank.stats(), bulk.bank.stats());
        assert_eq!(seq.bank.next_tick_at(), bulk.bank.next_tick_at());
        assert_eq!(v, vec![3, 6, 0], "earlier-accessed slots decay on earlier ticks");
    }

    #[test]
    fn advance_to_same_tick_ties_emit_in_slot_order() {
        let mut f = fx(5, DecayConfig::fixed(4000));
        for slot in [4usize, 2, 0] {
            f.access(slot);
        }
        let mut v = Vec::new();
        f.bank.advance_to(&mut f.st, 50_000, &mut v);
        assert_eq!(v, vec![0, 2, 4], "ties broken by slot index, like the per-tick scan");
    }

    #[test]
    fn one_bit_counters_have_coarser_ticks_same_interval() {
        let cfg = DecayConfig { decay_cycles: 4000, counter_bits: 1 };
        assert_eq!(cfg.tick_period(), 2000);
        assert_eq!(cfg.saturation(), 2);
        let mut f = fx(1, cfg);
        f.access(0);
        assert!(f.drain(2000).is_empty());
        assert_eq!(f.drain(4000), vec![0]);
    }

    #[test]
    fn word_chunked_scan_crosses_word_and_chunk_boundaries() {
        // Slots straddling the u64 word and u64×4 chunk edges of a bank
        // larger than one chunk: the scan must visit all of them in
        // ascending order.
        let mut f = fx(64 * 9, DecayConfig::fixed(4000));
        let slots = [0usize, 63, 64, 255, 256, 257, 511, 512, 64 * 9 - 1];
        for &s in &slots {
            f.access(s);
        }
        assert!(f.drain(3000).is_empty());
        assert_eq!(f.drain(4000), slots.to_vec());
        assert_eq!(f.bank.stats().decays, slots.len() as u64);
    }
}
