//! Hierarchical cache-decay counter bank (Kaxiras et al., ISCA'01),
//! extended for coherent caches.
//!
//! The hardware the paper assumes is a two-level counter architecture: one
//! **global cycle counter** that emits a *tick* every
//! `decay_time / 2^counter_bits` cycles, and a small saturating counter per
//! cache line. On every tick all per-line counters increment; a counter
//! that saturates marks its line as *decayed* and a turn-off request is
//! raised for it. Any access to the line resets its counter.
//!
//! Two extensions serve the paper's techniques:
//!
//! * an **armed bit** per line — Selective Decay arms decay only on
//!   transitions into Shared/Exclusive and disarms it on transitions into
//!   Modified, so M lines never decay;
//! * **activity accounting** (`DecayStats`) — every increment and reset is
//!   counted so `cmpleak-power` can charge the decay logic's dynamic
//!   energy, and the counter storage contributes leakage.
//!
//! The bank is indexed by the flat slot id of `cmpleak_mem::SetAssocArray`.

/// Configuration for one decay counter bank.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecayConfig {
    /// Target decay interval in cycles. A line decays after being unused
    /// for `decay_cycles` (quantised up by the tick period: the effective
    /// interval for a given line is between `decay_cycles` and
    /// `decay_cycles + tick_period`, exactly as in the hierarchical
    /// hardware scheme).
    pub decay_cycles: u64,
    /// Width of the per-line saturating counter (the paper assumes 2 bits).
    pub counter_bits: u32,
}

impl DecayConfig {
    /// Standard 2-bit configuration used throughout the paper.
    pub fn fixed(decay_cycles: u64) -> Self {
        Self { decay_cycles, counter_bits: 2 }
    }

    /// Cycles between global ticks.
    #[inline]
    pub fn tick_period(&self) -> u64 {
        let steps = 1u64 << self.counter_bits;
        (self.decay_cycles / steps).max(1)
    }

    /// Number of ticks after which an untouched line is considered
    /// decayed. A `b`-bit counter decays its line on the `2^b`-th tick
    /// (the saturating transition), so the effective per-line interval is
    /// in `(decay_cycles - tick_period, decay_cycles]` depending on the
    /// phase of the last access relative to the global tick.
    #[inline]
    pub fn saturation(&self) -> u8 {
        (1u64 << self.counter_bits).min(u8::MAX as u64) as u8
    }
}

/// Activity counters for energy accounting and tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DecayStats {
    /// Global ticks elapsed.
    pub ticks: u64,
    /// Per-line counter increments performed (dynamic energy events).
    pub increments: u64,
    /// Counter resets due to line accesses.
    pub resets: u64,
    /// Lines reported as decayed (turn-off requests raised).
    pub decays: u64,
}

/// A bank of per-line decay counters for one cache.
#[derive(Debug, Clone)]
pub struct DecayBank {
    cfg: DecayConfig,
    counters: Vec<u8>,
    armed: Vec<bool>,
    /// Lines currently live (counting); a decayed or turned-off line stops
    /// counting until rearmed by an access/fill.
    live: Vec<bool>,
    next_tick: u64,
    stats: DecayStats,
}

impl DecayBank {
    /// Create a bank covering `lines` slots. All lines start *not live*
    /// (nothing to decay until a fill arms them) and *armed* (plain fixed
    /// decay lets every line decay; Selective Decay manipulates the armed
    /// bits explicitly).
    pub fn new(lines: usize, cfg: DecayConfig) -> Self {
        assert!(cfg.counter_bits >= 1 && cfg.counter_bits <= 8, "counter bits in 1..=8");
        assert!(cfg.decay_cycles > 0, "decay interval must be positive");
        Self {
            next_tick: cfg.tick_period(),
            cfg,
            counters: vec![0; lines],
            armed: vec![true; lines],
            live: vec![false; lines],
            stats: DecayStats::default(),
        }
    }

    /// The configuration in effect.
    pub fn config(&self) -> DecayConfig {
        self.cfg
    }

    /// Accumulated activity statistics.
    pub fn stats(&self) -> DecayStats {
        self.stats
    }

    /// Cycle at which the next global tick fires.
    #[inline]
    pub fn next_tick_at(&self) -> u64 {
        self.next_tick
    }

    /// A line was accessed (hit or filled): reset its counter and mark it
    /// live so it participates in future ticks.
    #[inline]
    pub fn on_access(&mut self, slot: usize) {
        if self.counters[slot] != 0 {
            self.stats.resets += 1;
        }
        self.counters[slot] = 0;
        self.live[slot] = true;
    }

    /// The line was turned off or protocol-invalidated: stop counting it.
    #[inline]
    pub fn on_line_off(&mut self, slot: usize) {
        self.live[slot] = false;
        self.counters[slot] = 0;
    }

    /// Arm decay for a line (Selective Decay: transition into S or E).
    #[inline]
    pub fn arm(&mut self, slot: usize) {
        self.armed[slot] = true;
    }

    /// Disarm decay for a line (Selective Decay: transition into M).
    /// The counter keeps its value but the line cannot decay while
    /// disarmed.
    #[inline]
    pub fn disarm(&mut self, slot: usize) {
        self.armed[slot] = false;
    }

    /// Whether the given line is currently armed.
    #[inline]
    pub fn is_armed(&self, slot: usize) -> bool {
        self.armed[slot]
    }

    /// Whether the line is live (counting toward decay). A line that
    /// decayed or was turned off stops being live until re-accessed; the
    /// cache controller uses this to drop deferred turn-offs that an
    /// access overtook.
    #[inline]
    pub fn is_live(&self, slot: usize) -> bool {
        self.live[slot]
    }

    /// Advance to `now`, performing any global ticks that have become due,
    /// and append the slots that decayed to `decayed`.
    ///
    /// Multiple pending ticks (if the caller advanced time coarsely) are
    /// processed in order; per-tick semantics are identical to hardware
    /// scanning all counters on the tick edge. This is the sequential
    /// reference that [`DecayBank::advance_to`] must match exactly.
    pub fn advance(&mut self, now: u64, decayed: &mut Vec<usize>) {
        while self.next_tick <= now {
            self.tick(decayed);
            self.next_tick += self.cfg.tick_period();
        }
    }

    /// Advance to `now` in closed form: all `k` due ticks are applied in
    /// one pass over the counters instead of `k` sequential scans.
    ///
    /// Per slot, `k` ticks increment a live, armed counter `c` by
    /// `min(k, sat − c)` — increments stop at saturation — and the slot
    /// decays on tick number `sat − c`, at which point it stops being
    /// live. `DecayStats` accounting (`ticks`, `increments`, `decays`)
    /// and the decayed-slot emission order — `(tick, slot)`
    /// lexicographic, because each sequential tick scans slots in index
    /// order — are identical to [`DecayBank::advance`]; the equivalence
    /// is property-tested in `tests/properties.rs`.
    pub fn advance_to(&mut self, now: u64, decayed: &mut Vec<usize>) {
        if self.next_tick > now {
            return;
        }
        let period = self.cfg.tick_period();
        let k = (now - self.next_tick) / period + 1;
        self.next_tick += k * period;
        if k == 1 {
            // Common case (the caller advances every cycle or wakes at
            // each tick): one ordinary tick, no sort needed.
            self.tick(decayed);
            return;
        }
        self.stats.ticks += k;
        let sat = self.cfg.saturation();
        let mut newly: Vec<(u64, usize)> = Vec::new();
        for slot in 0..self.counters.len() {
            if !self.live[slot] || !self.armed[slot] {
                continue;
            }
            let c = self.counters[slot];
            if c >= sat {
                continue;
            }
            let room = u64::from(sat - c);
            let applied = room.min(k);
            self.counters[slot] = c + applied as u8;
            self.stats.increments += applied;
            if applied == room {
                self.live[slot] = false;
                self.stats.decays += 1;
                newly.push((room, slot));
            }
        }
        // Stable sort by decay tick: slots pushed in index order, so ties
        // keep index order — the per-tick scan's emission order.
        newly.sort_by_key(|&(tick_no, _)| tick_no);
        decayed.extend(newly.into_iter().map(|(_, slot)| slot));
    }

    /// Perform one global tick: increment every live, armed counter;
    /// saturated counters decay their line.
    fn tick(&mut self, decayed: &mut Vec<usize>) {
        self.stats.ticks += 1;
        let sat = self.cfg.saturation();
        for slot in 0..self.counters.len() {
            if !self.live[slot] || !self.armed[slot] {
                continue;
            }
            let c = &mut self.counters[slot];
            if *c < sat {
                *c += 1;
                self.stats.increments += 1;
                if *c == sat {
                    self.live[slot] = false;
                    self.stats.decays += 1;
                    decayed.push(slot);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(bank: &mut DecayBank, now: u64) -> Vec<usize> {
        let mut v = Vec::new();
        bank.advance(now, &mut v);
        v
    }

    #[test]
    fn tick_period_divides_decay_interval() {
        let cfg = DecayConfig::fixed(512_000);
        assert_eq!(cfg.tick_period(), 128_000);
        assert_eq!(cfg.saturation(), 4);
    }

    #[test]
    fn untouched_live_line_decays_after_interval() {
        let mut b = DecayBank::new(4, DecayConfig::fixed(4000));
        b.on_access(2);
        // After 3 ticks (3000 cycles) not yet decayed; 4th tick saturates.
        assert!(drain(&mut b, 3000).is_empty());
        let d = drain(&mut b, 4000);
        assert_eq!(d, vec![2]);
        assert_eq!(b.stats().decays, 1);
    }

    #[test]
    fn access_resets_the_countdown() {
        let mut b = DecayBank::new(1, DecayConfig::fixed(4000));
        b.on_access(0);
        assert!(drain(&mut b, 3000).is_empty());
        b.on_access(0); // reset at t=3000, on a tick boundary
        assert!(drain(&mut b, 6000).is_empty(), "reset must defer decay");
        let d = drain(&mut b, 7000);
        assert_eq!(d, vec![0]);
    }

    #[test]
    fn non_live_lines_never_decay() {
        let mut b = DecayBank::new(2, DecayConfig::fixed(1000));
        // Slot 0 never accessed (not live); slot 1 accessed then turned off.
        b.on_access(1);
        b.on_line_off(1);
        assert!(drain(&mut b, 100_000).is_empty());
        assert_eq!(b.stats().decays, 0);
    }

    #[test]
    fn disarmed_lines_hold_without_decaying() {
        let mut b = DecayBank::new(1, DecayConfig::fixed(1000));
        b.on_access(0);
        b.disarm(0);
        assert!(drain(&mut b, 10_000).is_empty());
        b.arm(0);
        // Counter was frozen at 0; decays one full interval after rearming.
        let d = drain(&mut b, 11_000);
        assert_eq!(d, vec![0]);
    }

    #[test]
    fn decayed_line_does_not_redecay_until_reaccessed() {
        let mut b = DecayBank::new(1, DecayConfig::fixed(1000));
        b.on_access(0);
        assert_eq!(drain(&mut b, 1000), vec![0]);
        assert!(drain(&mut b, 50_000).is_empty());
        b.on_access(0);
        assert_eq!(drain(&mut b, 51_000), vec![0]);
    }

    #[test]
    fn effective_interval_quantised_within_one_tick() {
        // Access mid-way between ticks: the first tick arrives early, so
        // the effective interval is nominal minus the access phase —
        // within one tick period of nominal, exactly as in the
        // hierarchical-counter hardware.
        let cfg = DecayConfig::fixed(4000); // ticks at 1000, 2000, ...
        let mut b = DecayBank::new(1, cfg);
        drain(&mut b, 1500);
        b.on_access(0); // t = 1500; counter ticks at 2000/3000/4000/5000
        assert!(drain(&mut b, 4999).is_empty());
        let mut v = Vec::new();
        b.advance(5000, &mut v);
        assert_eq!(v, vec![0]);
    }

    #[test]
    fn stats_count_increments_and_resets() {
        let mut b = DecayBank::new(2, DecayConfig::fixed(4000));
        b.on_access(0);
        b.on_access(1);
        drain(&mut b, 2000); // two ticks: 2 increments per live line
        assert_eq!(b.stats().increments, 4);
        b.on_access(0); // nonzero counter -> reset counted
        assert_eq!(b.stats().resets, 1);
    }

    #[test]
    fn advance_to_matches_sequential_ticks_including_order() {
        let cfg = DecayConfig::fixed(4000); // tick every 1000
        let mut seq = DecayBank::new(8, cfg);
        let mut bulk = DecayBank::new(8, cfg);
        // Stagger accesses so slots saturate on different ticks, and
        // disarm one slot to exercise the armed gate.
        for (slot, t) in [(3usize, 0u64), (1, 0), (6, 1000), (0, 2000)] {
            let mut v = Vec::new();
            seq.advance(t, &mut v);
            let mut w = Vec::new();
            bulk.advance_to(t, &mut w);
            assert_eq!(v, w);
            seq.on_access(slot);
            bulk.on_access(slot);
        }
        seq.disarm(1);
        bulk.disarm(1);
        let mut v = Vec::new();
        seq.advance(20_000, &mut v);
        let mut w = Vec::new();
        bulk.advance_to(20_000, &mut w);
        assert_eq!(v, w, "bulk advance must emit the same slots in the same order");
        assert_eq!(seq.stats(), bulk.stats());
        assert_eq!(seq.next_tick_at(), bulk.next_tick_at());
        assert_eq!(v, vec![3, 6, 0], "earlier-accessed slots decay on earlier ticks");
    }

    #[test]
    fn advance_to_same_tick_ties_emit_in_slot_order() {
        let cfg = DecayConfig::fixed(4000);
        let mut b = DecayBank::new(5, cfg);
        for slot in [4usize, 2, 0] {
            b.on_access(slot);
        }
        let mut v = Vec::new();
        b.advance_to(50_000, &mut v);
        assert_eq!(v, vec![0, 2, 4], "ties broken by slot index, like the per-tick scan");
    }

    #[test]
    fn one_bit_counters_have_coarser_ticks_same_interval() {
        let cfg = DecayConfig { decay_cycles: 4000, counter_bits: 1 };
        assert_eq!(cfg.tick_period(), 2000);
        assert_eq!(cfg.saturation(), 2);
        let mut b = DecayBank::new(1, cfg);
        b.on_access(0);
        assert!(drain(&mut b, 2000).is_empty());
        assert_eq!(drain(&mut b, 4000), vec![0]);
    }
}
