//! Generic set-associative tag array with true-LRU replacement.
//!
//! The array stores per-line metadata of type `M` (coherence state, dirty
//! bits, …) supplied by the embedding cache model. Validity is part of the
//! metadata (`M::is_valid`), so the array itself never interprets the
//! coherence state — it only provides lookup, touch and victim selection.
//!
//! Storage is **columnar**: tags, LRU stamps and metadata live in three
//! parallel arrays instead of an array of per-line structs, so the probe
//! loop walks a dense `u64` tag column (metadata is consulted only on a
//! tag match) and **all three** columns are checked out of a
//! [`BankArena`] and reused across simulations instead of being
//! reallocated per sweep grid cell — the metadata column is held as one
//! byte per line ([`LineMeta::to_byte`]/[`LineMeta::from_byte`]; every
//! cache's per-line state in the workspace fits a byte), so it pools
//! through the arena's `u8` buffers like the line-state bank's counter
//! column. An invalid slot's tag is pinned to a sentinel so stale tags
//! can never alias a probe.

use crate::addr::{Geometry, LineAddr};
use crate::bank::BankArena;
use std::marker::PhantomData;

/// Tag column value of an invalid slot. Line addresses are byte
/// addresses shifted right by the offset bits, so `u64::MAX` is
/// unreachable for any real line.
const INVALID_TAG: u64 = u64::MAX;

/// Per-line metadata contract. `Default` must produce an *invalid* line.
///
/// Metadata is stored as one byte per line so the column can be pooled
/// through the [`BankArena`]; `to_byte`/`from_byte` must be exact
/// inverses over every value the embedding cache constructs.
pub trait LineMeta: Default + Clone {
    /// Whether this line currently holds a valid (powered, allocated) block.
    fn is_valid(&self) -> bool;

    /// Pack into the byte column.
    fn to_byte(&self) -> u8;

    /// Unpack from the byte column (inverse of [`LineMeta::to_byte`]).
    fn from_byte(b: u8) -> Self;
}

/// Read-only view of one line slot (tag + LRU stamp + caller metadata),
/// assembled (and the metadata decoded) from the columns.
#[derive(Debug)]
pub struct LineView<M> {
    /// Full line address of the resident block (meaningful only when
    /// `meta.is_valid()`).
    pub tag: LineAddr,
    /// Monotonic last-use stamp for LRU.
    pub lru: u64,
    /// Caller-owned metadata, decoded from the byte column.
    pub meta: M,
}

/// Result of a lookup: hit slot or the set to fill into.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LookupOutcome {
    /// The block is resident; the payload is the flat slot id.
    Hit(usize),
    /// The block is absent from its set.
    Miss,
}

/// A set-associative array of lines carrying metadata `M`, stored as
/// parallel tag / LRU / metadata-byte columns.
#[derive(Debug, Clone)]
pub struct SetAssocArray<M> {
    geom: Geometry,
    tags: Vec<u64>,
    lru: Vec<u64>,
    meta: Vec<u8>,
    stamp: u64,
    _marker: PhantomData<M>,
}

impl<M: LineMeta> SetAssocArray<M> {
    /// Allocate an array with all lines invalid.
    pub fn new(geom: Geometry) -> Self {
        Self::new_in(geom, &mut BankArena::default())
    }

    /// Like [`SetAssocArray::new`], with every column — tags, LRU and
    /// the byte-packed metadata — checked out of `arena`.
    pub fn new_in(geom: Geometry, arena: &mut BankArena) -> Self {
        let lines = geom.lines();
        Self {
            geom,
            tags: arena.take_u64(lines, INVALID_TAG),
            lru: arena.take_u64(lines, 0),
            meta: arena.take_u8(lines, M::default().to_byte()),
            stamp: 0,
            _marker: PhantomData,
        }
    }

    /// Return the arena-backed columns (the array becomes empty).
    pub fn release_into(&mut self, arena: &mut BankArena) {
        arena.give_u64(std::mem::take(&mut self.tags));
        arena.give_u64(std::mem::take(&mut self.lru));
        arena.give_u8(std::mem::take(&mut self.meta));
    }

    /// The geometry this array was built with.
    #[inline]
    pub fn geometry(&self) -> Geometry {
        self.geom
    }

    /// Flat slot ids making up the set `line` maps to (used by embedding
    /// caches that need custom victim policies, e.g. skipping transient
    /// lines).
    #[inline]
    pub fn set_slots(&self, line: LineAddr) -> std::ops::Range<usize> {
        let set = self.geom.set_index(line);
        let base = set * self.geom.assoc;
        base..base + self.geom.assoc
    }

    #[inline]
    fn set_range(&self, line: LineAddr) -> std::ops::Range<usize> {
        self.set_slots(line)
    }

    /// Find the slot holding `line`, without updating LRU state. Scans
    /// the tag column only; metadata validity is confirmed on a match
    /// (an invalid slot's tag is the sentinel, so this cannot hit).
    pub fn probe(&self, line: LineAddr) -> LookupOutcome {
        for idx in self.set_range(line) {
            if self.tags[idx] == line.0 && M::from_byte(self.meta[idx]).is_valid() {
                return LookupOutcome::Hit(idx);
            }
        }
        LookupOutcome::Miss
    }

    /// Find the slot holding `line` and mark it most-recently-used.
    pub fn lookup(&mut self, line: LineAddr) -> LookupOutcome {
        match self.probe(line) {
            LookupOutcome::Hit(idx) => {
                self.touch(idx);
                LookupOutcome::Hit(idx)
            }
            LookupOutcome::Miss => LookupOutcome::Miss,
        }
    }

    /// Mark a slot most-recently-used.
    #[inline]
    pub fn touch(&mut self, slot: usize) {
        self.stamp += 1;
        self.lru[slot] = self.stamp;
    }

    /// Choose a victim slot in `line`'s set: an invalid way if one exists,
    /// otherwise the least-recently-used way. Does not modify the slot.
    pub fn victim(&self, line: LineAddr) -> usize {
        let mut best = usize::MAX;
        let mut best_lru = u64::MAX;
        for idx in self.set_range(line) {
            if !M::from_byte(self.meta[idx]).is_valid() {
                return idx;
            }
            if self.lru[idx] < best_lru {
                best_lru = self.lru[idx];
                best = idx;
            }
        }
        best
    }

    /// Install `line` into `slot`, replacing whatever was there, with fresh
    /// metadata, and mark it MRU. Returns the evicted line's `(tag, meta)`
    /// if the slot held a valid block.
    pub fn fill(&mut self, slot: usize, line: LineAddr, meta: M) -> Option<(LineAddr, M)> {
        let old = M::from_byte(self.meta[slot]);
        let prev = old.is_valid().then(|| (LineAddr(self.tags[slot]), old));
        self.stamp += 1;
        self.tags[slot] = line.0;
        self.meta[slot] = meta.to_byte();
        self.lru[slot] = self.stamp;
        prev
    }

    /// Immutable view of a slot (metadata decoded from the byte column).
    #[inline]
    pub fn slot(&self, slot: usize) -> LineView<M> {
        LineView {
            tag: LineAddr(self.tags[slot]),
            lru: self.lru[slot],
            meta: M::from_byte(self.meta[slot]),
        }
    }

    /// A slot's metadata, decoded.
    #[inline]
    pub fn meta(&self, slot: usize) -> M {
        M::from_byte(self.meta[slot])
    }

    /// Overwrite a slot's metadata (tag and LRU untouched).
    #[inline]
    pub fn set_meta(&mut self, slot: usize, meta: M) {
        self.meta[slot] = meta.to_byte();
    }

    /// Update a slot's metadata in place (decode → mutate → re-encode).
    #[inline]
    pub fn update_meta(&mut self, slot: usize, f: impl FnOnce(&mut M)) {
        let mut m = M::from_byte(self.meta[slot]);
        f(&mut m);
        self.meta[slot] = m.to_byte();
    }

    /// Invalidate a slot (metadata reset to default, tag pinned to the
    /// sentinel so the slot can never alias a later probe).
    pub fn invalidate(&mut self, slot: usize) {
        self.tags[slot] = INVALID_TAG;
        self.meta[slot] = M::default().to_byte();
    }

    /// Iterate over all slots with their flat ids.
    pub fn iter(&self) -> impl Iterator<Item = (usize, LineView<M>)> + '_ {
        (0..self.meta.len()).map(|i| (i, self.slot(i)))
    }

    /// Number of currently valid lines.
    pub fn valid_count(&self) -> usize {
        self.meta.iter().filter(|&&b| M::from_byte(b).is_valid()).count()
    }

    /// Set index a flat slot id belongs to.
    #[inline]
    pub fn set_of_slot(&self, slot: usize) -> usize {
        slot / self.geom.assoc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Default, Clone, Debug, PartialEq)]
    struct V(bool);
    impl LineMeta for V {
        fn is_valid(&self) -> bool {
            self.0
        }
        fn to_byte(&self) -> u8 {
            self.0.into()
        }
        fn from_byte(b: u8) -> Self {
            V(b != 0)
        }
    }

    fn small() -> SetAssocArray<V> {
        // 4 sets, 2 ways, 64 B lines.
        SetAssocArray::new(Geometry::new(512, 64, 2))
    }

    #[test]
    fn miss_then_fill_then_hit() {
        let mut a = small();
        let line = a.geometry().line_of(0x80);
        assert_eq!(a.lookup(line), LookupOutcome::Miss);
        let v = a.victim(line);
        assert!(a.fill(v, line, V(true)).is_none());
        assert_eq!(a.lookup(line), LookupOutcome::Hit(v));
    }

    #[test]
    fn victim_prefers_invalid_way() {
        let mut a = small();
        let g = a.geometry();
        let l0 = g.line_of(0); // set 0
        let v0 = a.victim(l0);
        a.fill(v0, l0, V(true));
        let l1 = g.line_of((4 * 64) as u64); // also set 0 (wraps 4 sets)
        let v1 = a.victim(l1);
        assert_ne!(v0, v1, "second fill must take the invalid way");
    }

    #[test]
    fn victim_is_lru_when_set_full() {
        let mut a = small();
        let g = a.geometry();
        let l0 = g.line_of(0);
        let l1 = g.line_of(4 * 64);
        let l2 = g.line_of(8 * 64); // all map to set 0
        let v0 = a.victim(l0);
        a.fill(v0, l0, V(true));
        let v1 = a.victim(l1);
        a.fill(v1, l1, V(true));
        // Touch l0 so l1 becomes LRU.
        a.lookup(l0);
        let v2 = a.victim(l2);
        assert_eq!(v2, v1, "LRU way must be chosen");
        let evicted = a.fill(v2, l2, V(true)).expect("eviction");
        assert_eq!(evicted.0, l1);
    }

    #[test]
    fn invalidate_frees_the_slot() {
        let mut a = small();
        let g = a.geometry();
        let l0 = g.line_of(0x40);
        let v = a.victim(l0);
        a.fill(v, l0, V(true));
        a.invalidate(v);
        assert_eq!(a.lookup(l0), LookupOutcome::Miss);
        assert_eq!(a.valid_count(), 0);
    }

    #[test]
    fn fill_reports_previous_occupant() {
        let mut a = small();
        let g = a.geometry();
        let l0 = g.line_of(0);
        let l1 = g.line_of(4 * 64);
        let v = a.victim(l0);
        a.fill(v, l0, V(true));
        let prev = a.fill(v, l1, V(true));
        assert_eq!(prev, Some((l0, V(true))));
    }

    #[test]
    fn probe_does_not_perturb_lru() {
        let mut a = small();
        let g = a.geometry();
        let l0 = g.line_of(0);
        let l1 = g.line_of(4 * 64);
        let l2 = g.line_of(8 * 64);
        let v0 = a.victim(l0);
        a.fill(v0, l0, V(true));
        let v1 = a.victim(l1);
        a.fill(v1, l1, V(true));
        // probe l0 (no LRU update): l0 stays LRU and must be evicted next.
        assert_eq!(a.probe(l0), LookupOutcome::Hit(v0));
        assert_eq!(a.victim(l2), v0);
    }

    #[test]
    fn arena_round_trip_reuses_columns_and_resets_state() {
        let mut arena = BankArena::default();
        let geom = Geometry::new(512, 64, 2);
        let mut a: SetAssocArray<V> = SetAssocArray::new_in(geom, &mut arena);
        let line = geom.line_of(0x40);
        let v = a.victim(line);
        a.fill(v, line, V(true));
        a.release_into(&mut arena);
        let allocs = arena.stats().fresh_allocations;
        let b: SetAssocArray<V> = SetAssocArray::new_in(geom, &mut arena);
        assert_eq!(arena.stats().fresh_allocations, allocs, "columns reused");
        assert_eq!(b.probe(line), LookupOutcome::Miss, "reused array starts empty");
        assert_eq!(b.valid_count(), 0);
    }
}
