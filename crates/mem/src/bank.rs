//! Columnar per-line state banks and the arena that owns their storage.
//!
//! Every leakage mechanism in the simulator tracks some flavour of
//! per-cache-line state across arrays that reach tens of megabytes at
//! the paper's 8 MB L2 configurations: the Gated-Vdd powered bit and its
//! on-time accounting, the decay bank's armed/live bits and saturating
//! counters, the tag array's tag/LRU columns. Three properties matter at
//! that scale and are provided here, behind one storage layer:
//!
//! * **word packing** — the boolean columns (`powered`, `armed`, `live`)
//!   are `u64` bitsets ([`BitSet`]), so counting is popcount and the two
//!   hot scans — the decay tick and the final on-cycle accounting pass —
//!   walk `u64×4` chunks and skip idle regions 256 lines at a time;
//! * **columnar layout** — timestamps and counters live in their own
//!   dense arrays ([`LineStateBank`]), touched only by the passes that
//!   need them, instead of being interleaved in per-line structs;
//! * **arena reuse** — a [`BankArena`] owns the backing allocations and
//!   hands them out per simulation; a sweep worker running hundreds of
//!   grid cells re-checks the same buffers out instead of reallocating
//!   the multi-MB columns for every cell.
//!
//! The bank stores state; *policy* stays with its owners
//! (`DecayBank` decides when counters tick, the L2 decides when lines
//! gate). Bit semantics are property-tested against a naive `Vec<bool>`
//! model in `tests/bank_properties.rs`.

/// A fixed-length bitset packed into `u64` words.
///
/// The invariant that bits at index `>= len` are zero is maintained by
/// every operation, so popcounts and word scans never see ghost bits.
#[derive(Debug, Clone, Default)]
pub struct BitSet {
    words: Vec<u64>,
    len: usize,
}

/// Words scanned per chunk in the hot passes: `u64×4` = 256 lines.
const CHUNK: usize = 4;

impl BitSet {
    /// An all-zero bitset of `len` bits.
    pub fn new(len: usize) -> Self {
        Self { words: vec![0; len.div_ceil(64)], len }
    }

    /// Number of bits.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the set holds no bits at all.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of backing words.
    #[inline]
    pub fn word_count(&self) -> usize {
        self.words.len()
    }

    /// One backing word (bits `i*64 .. i*64+64`).
    #[inline]
    pub fn word(&self, i: usize) -> u64 {
        self.words[i]
    }

    /// Test bit `i`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        self.words[i / 64] >> (i % 64) & 1 != 0
    }

    /// Set bit `i`.
    #[inline]
    pub fn set(&mut self, i: usize) {
        debug_assert!(i < self.len);
        self.words[i / 64] |= 1 << (i % 64);
    }

    /// Clear bit `i`.
    #[inline]
    pub fn clear(&mut self, i: usize) {
        debug_assert!(i < self.len);
        self.words[i / 64] &= !(1 << (i % 64));
    }

    /// Set every bit (masking the tail of the last word).
    pub fn set_all(&mut self) {
        for w in &mut self.words {
            *w = !0;
        }
        self.mask_tail();
    }

    /// Clear every bit.
    pub fn clear_all(&mut self) {
        for w in &mut self.words {
            *w = 0;
        }
    }

    /// Zero the bits past `len` in the last word.
    fn mask_tail(&mut self) {
        let tail = self.len % 64;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }

    /// Population count, scanned in `u64×4` chunks.
    pub fn count_ones(&self) -> u64 {
        let mut acc = [0u64; CHUNK];
        let mut chunks = self.words.chunks_exact(CHUNK);
        for c in &mut chunks {
            for (a, w) in acc.iter_mut().zip(c) {
                *a += w.count_ones() as u64;
            }
        }
        let mut total: u64 = acc.iter().sum();
        for w in chunks.remainder() {
            total += w.count_ones() as u64;
        }
        total
    }

    /// Indices of set bits, ascending.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            std::iter::successors((w != 0).then_some(w), |&bits| {
                let next = bits & (bits - 1);
                (next != 0).then_some(next)
            })
            .map(move |bits| wi * 64 + bits.trailing_zeros() as usize)
        })
    }

    /// Rebuild from an arena buffer: `len` bits, all zero.
    fn from_arena(len: usize, arena: &mut BankArena) -> Self {
        Self { words: arena.take_u64(len.div_ceil(64), 0), len }
    }

    /// Return the backing words to `arena`.
    fn release_into(&mut self, arena: &mut BankArena) {
        arena.give_u64(std::mem::take(&mut self.words));
        self.len = 0;
    }
}

/// All per-line power/decay state of one cache, in columnar form.
///
/// Construction leaves the bank in the *neutral* state every consumer
/// starts from: nothing powered, nothing live, every line armed (plain
/// fixed decay lets every line decay; Selective Decay manipulates armed
/// bits explicitly), counters and timestamps zero.
#[derive(Debug, Clone, Default)]
pub struct LineStateBank {
    lines: usize,
    /// Gated-Vdd state: bit set = line powered.
    powered: BitSet,
    /// Decay-armed bit (Selective Decay disarms M lines).
    armed: BitSet,
    /// Line is live: counting toward decay until saturated or gated.
    live: BitSet,
    /// Saturating decay counters.
    counters: Vec<u8>,
    /// Cycle the line was last powered on (meaningful while powered).
    powered_since: Vec<u64>,
    /// Accumulated powered cycles per line.
    on_cycles: Vec<u64>,
    /// Cached popcount of `powered` (kept exact incrementally; the
    /// word-packed layout makes the invariant cheap to audit).
    powered_count: u64,
}

impl LineStateBank {
    /// A bank covering `lines` slots, freshly allocated.
    pub fn new(lines: usize) -> Self {
        Self::new_in(lines, &mut BankArena::default())
    }

    /// A bank covering `lines` slots, storage checked out of `arena`.
    pub fn new_in(lines: usize, arena: &mut BankArena) -> Self {
        let mut bank = Self {
            lines,
            powered: BitSet::from_arena(lines, arena),
            armed: BitSet::from_arena(lines, arena),
            live: BitSet::from_arena(lines, arena),
            counters: arena.take_u8(lines, 0),
            powered_since: arena.take_u64(lines, 0),
            on_cycles: arena.take_u64(lines, 0),
            powered_count: 0,
        };
        bank.armed.set_all();
        bank
    }

    /// Hand every column back to `arena` (the bank becomes empty).
    pub fn release_into(&mut self, arena: &mut BankArena) {
        self.powered.release_into(arena);
        self.armed.release_into(arena);
        self.live.release_into(arena);
        arena.give_u8(std::mem::take(&mut self.counters));
        arena.give_u64(std::mem::take(&mut self.powered_since));
        arena.give_u64(std::mem::take(&mut self.on_cycles));
        self.lines = 0;
        self.powered_count = 0;
    }

    /// Number of line slots covered.
    #[inline]
    pub fn lines(&self) -> usize {
        self.lines
    }

    // ---- powered column --------------------------------------------------

    /// Power every line on at cycle 0 (the always-on baseline start).
    pub fn power_all_on(&mut self) {
        self.powered.set_all();
        self.powered_count = self.lines as u64;
    }

    /// Whether `slot` is powered.
    #[inline]
    pub fn is_powered(&self, slot: usize) -> bool {
        self.powered.get(slot)
    }

    /// Lines currently powered (O(1), maintained incrementally).
    #[inline]
    pub fn powered_count(&self) -> u64 {
        self.powered_count
    }

    /// Power `slot` on at `now` (no-op if already powered).
    #[inline]
    pub fn power_on(&mut self, slot: usize, now: u64) {
        if !self.powered.get(slot) {
            self.powered.set(slot);
            self.powered_since[slot] = now;
            self.powered_count += 1;
        }
    }

    /// Power `slot` off at `now`, banking its on-time (no-op if off).
    #[inline]
    pub fn power_off(&mut self, slot: usize, now: u64) {
        if self.powered.get(slot) {
            self.powered.clear(slot);
            self.on_cycles[slot] += now - self.powered_since[slot];
            self.powered_count -= 1;
        }
    }

    /// Close the books at `now`: bank the on-time of every still-powered
    /// line (word-chunked over the powered bitset) and return Σ
    /// on-cycles over all slots (`u64×4` accumulators).
    pub fn finish_on_cycles(&mut self, now: u64) -> u64 {
        let nw = self.powered.word_count();
        let mut w = 0;
        while w < nw {
            let end = (w + CHUNK).min(nw);
            let mut any = 0u64;
            for i in w..end {
                any |= self.powered.word(i);
            }
            if any != 0 {
                for i in w..end {
                    let mut bits = self.powered.word(i);
                    if bits == !0u64 {
                        // Dense fast path: a fully powered word walks its
                        // 64 slots directly, without per-bit extraction.
                        for slot in i * 64..i * 64 + 64 {
                            self.on_cycles[slot] += now - self.powered_since[slot];
                            self.powered_since[slot] = now;
                        }
                        continue;
                    }
                    while bits != 0 {
                        let slot = i * 64 + bits.trailing_zeros() as usize;
                        bits &= bits - 1;
                        self.on_cycles[slot] += now - self.powered_since[slot];
                        self.powered_since[slot] = now;
                    }
                }
            }
            w = end;
        }
        let mut acc = [0u64; CHUNK];
        let mut chunks = self.on_cycles.chunks_exact(CHUNK);
        for c in &mut chunks {
            for (a, v) in acc.iter_mut().zip(c) {
                *a += v;
            }
        }
        acc.iter().sum::<u64>() + chunks.remainder().iter().sum::<u64>()
    }

    // ---- armed / live columns -------------------------------------------

    /// Arm decay for `slot`.
    #[inline]
    pub fn arm(&mut self, slot: usize) {
        self.armed.set(slot);
    }

    /// Disarm decay for `slot` (its counter freezes).
    #[inline]
    pub fn disarm(&mut self, slot: usize) {
        self.armed.clear(slot);
    }

    /// Whether `slot` is armed.
    #[inline]
    pub fn is_armed(&self, slot: usize) -> bool {
        self.armed.get(slot)
    }

    /// Whether `slot` is live (counting toward decay).
    #[inline]
    pub fn is_live(&self, slot: usize) -> bool {
        self.live.get(slot)
    }

    /// Mark `slot` live.
    #[inline]
    pub fn set_live(&mut self, slot: usize) {
        self.live.set(slot);
    }

    /// Mark `slot` not live.
    #[inline]
    pub fn clear_live(&mut self, slot: usize) {
        self.live.clear(slot);
    }

    /// One word of `live & armed` — the decay tick's scan mask.
    #[inline]
    pub fn tickable_word(&self, i: usize) -> u64 {
        self.live.word(i) & self.armed.word(i)
    }

    /// Words backing the bit columns.
    #[inline]
    pub fn word_count(&self) -> usize {
        self.live.word_count()
    }

    /// Lines currently live (popcount; debug/test aid).
    pub fn live_count(&self) -> u64 {
        self.live.count_ones()
    }

    // ---- counter column --------------------------------------------------

    /// Decay counter of `slot`.
    #[inline]
    pub fn counter(&self, slot: usize) -> u8 {
        self.counters[slot]
    }

    /// Overwrite the decay counter of `slot`.
    #[inline]
    pub fn set_counter(&mut self, slot: usize, v: u8) {
        self.counters[slot] = v;
    }

    /// The whole counter column, mutably — the decay tick's dense fast
    /// path walks word-aligned windows of it as a slice instead of
    /// paying two bounds-checked accessor calls per slot.
    #[inline]
    pub(crate) fn counters_mut(&mut self) -> &mut [u8] {
        &mut self.counters
    }
}

/// Allocation counters of a [`BankArena`] — the evidence that per-cell
/// reallocation is gone (`BENCH_bank.json` reports the deltas).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ArenaStats {
    /// Buffers requested from the arena.
    pub checkouts: u64,
    /// Requests served by a pooled buffer whose capacity sufficed.
    pub reuses: u64,
    /// Requests that had to allocate (empty pool or no buffer large
    /// enough).
    pub fresh_allocations: u64,
    /// Buffers returned to the pool.
    pub returns: u64,
}

/// Owns the large per-line allocations across simulations.
///
/// Checked out per grid cell through `SimScratch`/`ExperimentScratch`:
/// the first cell a sweep worker runs allocates, every later cell of
/// compatible size reuses. Buffers are matched best-fit by capacity so a
/// bitset word buffer is not burned on a full-length column.
#[derive(Debug, Default)]
pub struct BankArena {
    u64_pool: Vec<Vec<u64>>,
    u8_pool: Vec<Vec<u8>>,
    stats: ArenaStats,
}

/// Check a cleared buffer of capacity ≥ `cap` out of `pool`, best-fit
/// (the smallest pooled buffer that covers `cap`); `None` if no pooled
/// buffer is large enough. The single checkout routine behind every
/// `take_*` flavour, so pool policy changes land in one place.
fn checkout<T>(pool: &mut Vec<Vec<T>>, cap: usize) -> Option<Vec<T>> {
    let mut best: Option<usize> = None;
    for (i, v) in pool.iter().enumerate() {
        if v.capacity() >= cap && best.is_none_or(|b| v.capacity() < pool[b].capacity()) {
            best = Some(i);
        }
    }
    let mut v = pool.swap_remove(best?);
    v.clear();
    Some(v)
}

fn take_from_pool<T: Copy>(pool: &mut Vec<Vec<T>>, len: usize, fill: T) -> (Vec<T>, bool) {
    match checkout(pool, len) {
        Some(mut v) => {
            v.resize(len, fill);
            (v, true)
        }
        None => (vec![fill; len], false),
    }
}

impl BankArena {
    /// Check out a `u64` buffer of `len` elements, all set to `fill`.
    pub fn take_u64(&mut self, len: usize, fill: u64) -> Vec<u64> {
        let (v, reused) = take_from_pool(&mut self.u64_pool, len, fill);
        self.note(reused);
        v
    }

    /// Check out a `u8` buffer of `len` elements, all set to `fill`.
    pub fn take_u8(&mut self, len: usize, fill: u8) -> Vec<u8> {
        let (v, reused) = take_from_pool(&mut self.u8_pool, len, fill);
        self.note(reused);
        v
    }

    /// Check out an **empty** `u8` buffer with capacity for at least
    /// `cap` elements — for append-style consumers (stream encoders)
    /// that would otherwise pay a fill memset just to clear it again.
    pub fn take_u8_empty(&mut self, cap: usize) -> Vec<u8> {
        let (v, reused) = match checkout(&mut self.u8_pool, cap) {
            Some(v) => (v, true),
            None => (Vec::with_capacity(cap), false),
        };
        self.note(reused);
        v
    }

    /// Return a `u64` buffer to the pool.
    pub fn give_u64(&mut self, v: Vec<u64>) {
        if v.capacity() > 0 {
            self.u64_pool.push(v);
            self.stats.returns += 1;
        }
    }

    /// Return a `u8` buffer to the pool.
    pub fn give_u8(&mut self, v: Vec<u8>) {
        if v.capacity() > 0 {
            self.u8_pool.push(v);
            self.stats.returns += 1;
        }
    }

    fn note(&mut self, reused: bool) {
        self.stats.checkouts += 1;
        if reused {
            self.stats.reuses += 1;
        } else {
            self.stats.fresh_allocations += 1;
        }
    }

    /// Accumulated allocation counters.
    pub fn stats(&self) -> ArenaStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bitset_basic_ops_and_tail_masking() {
        let mut b = BitSet::new(70); // last word holds 6 live bits
        assert_eq!(b.count_ones(), 0);
        b.set(0);
        b.set(63);
        b.set(69);
        assert!(b.get(0) && b.get(63) && b.get(69) && !b.get(1));
        assert_eq!(b.count_ones(), 3);
        assert_eq!(b.iter_ones().collect::<Vec<_>>(), vec![0, 63, 69]);
        b.set_all();
        assert_eq!(b.count_ones(), 70, "tail bits must stay masked");
        b.clear(69);
        assert_eq!(b.count_ones(), 69);
        b.clear_all();
        assert_eq!(b.count_ones(), 0);
    }

    #[test]
    fn bank_starts_neutral() {
        let b = LineStateBank::new(130);
        assert_eq!(b.powered_count(), 0);
        assert_eq!(b.live_count(), 0);
        assert!(b.is_armed(0) && b.is_armed(129), "all lines armed by default");
        assert_eq!(b.counter(64), 0);
    }

    #[test]
    fn power_accounting_integrates_on_time() {
        let mut b = LineStateBank::new(256);
        b.power_on(3, 100);
        b.power_on(3, 120); // no-op
        b.power_on(200, 50);
        assert_eq!(b.powered_count(), 2);
        b.power_off(3, 300);
        assert_eq!(b.powered_count(), 1);
        assert!(!b.is_powered(3) && b.is_powered(200));
        // 3: 300-100 = 200 banked; 200: still on since 50 → 950 at t=1000.
        assert_eq!(b.finish_on_cycles(1000), 200 + 950);
        // Idempotent at the same instant: since-stamps were rebased.
        assert_eq!(b.finish_on_cycles(1000), 200 + 950);
    }

    #[test]
    fn power_all_on_matches_popcount() {
        let mut b = LineStateBank::new(100);
        b.power_all_on();
        assert_eq!(b.powered_count(), 100);
        assert_eq!(b.finish_on_cycles(7), 700);
    }

    #[test]
    fn arena_reuses_buffers_across_checkouts() {
        let mut arena = BankArena::default();
        let mut bank = LineStateBank::new_in(4096, &mut arena);
        let first = arena.stats();
        assert_eq!(first.fresh_allocations, first.checkouts, "cold arena allocates");
        bank.release_into(&mut arena);
        let _bank2 = LineStateBank::new_in(4096, &mut arena);
        let second = arena.stats();
        assert_eq!(
            second.fresh_allocations, first.fresh_allocations,
            "second checkout of the same shape must not allocate"
        );
        assert_eq!(second.reuses, first.checkouts);
    }

    #[test]
    fn arena_best_fit_keeps_small_buffers_for_small_requests() {
        let mut arena = BankArena::default();
        arena.give_u64(Vec::with_capacity(64));
        arena.give_u64(Vec::with_capacity(4096));
        let small = arena.take_u64(10, 0);
        assert!(small.capacity() < 4096, "best fit picks the 64-cap buffer");
        let big = arena.take_u64(4000, 1);
        assert!(big.capacity() >= 4096);
        assert_eq!(big[3999], 1);
        assert_eq!(arena.stats().reuses, 2);
    }
}
