//! Miss Status Holding Registers.
//!
//! Both cache levels in the simulated hierarchy (Fig. 1 of the paper) own
//! an MSHR so that hits can be served under pending misses and secondary
//! misses to an in-flight line merge instead of issuing duplicate bus
//! transactions.
//!
//! The MSHR is generic over the per-target payload `T` (the embedding
//! cache records which core request / upstream miss is waiting on the
//! fill).

use crate::addr::LineAddr;

/// One in-flight miss and the requests waiting on it.
#[derive(Debug, Clone)]
pub struct MshrEntry<T> {
    /// The missing line.
    pub line: LineAddr,
    /// Requests to wake when the fill arrives.
    pub targets: Vec<T>,
    /// Whether the miss has been granted the bus / sent downstream yet.
    pub issued: bool,
    /// Whether the miss requires exclusive ownership (write miss /
    /// upgrade); a later write to a line with a pending read miss promotes
    /// this.
    pub exclusive: bool,
}

/// Outcome of [`Mshr::allocate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MshrAlloc {
    /// A new entry was created: a downstream request must be issued.
    Primary,
    /// Merged into an existing entry for the same line.
    Secondary,
    /// No free entry: the request must stall and retry.
    Full,
}

/// A small fully-associative MSHR file.
#[derive(Debug, Clone)]
pub struct Mshr<T> {
    entries: Vec<MshrEntry<T>>,
    capacity: usize,
    max_targets: usize,
    /// Peak simultaneous occupancy, for reporting.
    peak: usize,
}

impl<T> Mshr<T> {
    /// An MSHR with `capacity` entries, each holding up to `max_targets`
    /// merged requests.
    pub fn new(capacity: usize, max_targets: usize) -> Self {
        assert!(capacity > 0 && max_targets > 0);
        Self { entries: Vec::with_capacity(capacity), capacity, max_targets, peak: 0 }
    }

    /// Entries currently in flight.
    #[inline]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no miss is outstanding.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// True when no new primary miss can be accepted.
    #[inline]
    pub fn is_full(&self) -> bool {
        self.entries.len() >= self.capacity
    }

    /// Peak occupancy observed.
    #[inline]
    pub fn peak(&self) -> usize {
        self.peak
    }

    /// Whether a miss for `line` is already outstanding.
    pub fn pending(&self, line: LineAddr) -> bool {
        self.entries.iter().any(|e| e.line == line)
    }

    /// Look up the entry for `line`.
    pub fn get(&self, line: LineAddr) -> Option<&MshrEntry<T>> {
        self.entries.iter().find(|e| e.line == line)
    }

    /// Look up the entry for `line`, mutably.
    pub fn get_mut(&mut self, line: LineAddr) -> Option<&mut MshrEntry<T>> {
        self.entries.iter_mut().find(|e| e.line == line)
    }

    /// Whether [`Mshr::allocate`] for `line` would succeed (primary or
    /// secondary) — the non-mutating mirror of its `Full` conditions, so
    /// callers can prove a refused request will keep being refused until
    /// an entry completes.
    pub fn would_accept(&self, line: LineAddr) -> bool {
        match self.get(line) {
            Some(e) => e.targets.len() < self.max_targets,
            None => !self.is_full(),
        }
    }

    /// Record a miss for `line` carrying `target`. Merges into an existing
    /// entry when possible; `exclusive` requests ownership (store miss).
    pub fn allocate(&mut self, line: LineAddr, target: T, exclusive: bool) -> MshrAlloc {
        if let Some(e) = self.entries.iter_mut().find(|e| e.line == line) {
            if e.targets.len() >= self.max_targets {
                return MshrAlloc::Full;
            }
            e.targets.push(target);
            e.exclusive |= exclusive;
            return MshrAlloc::Secondary;
        }
        if self.is_full() {
            return MshrAlloc::Full;
        }
        self.entries.push(MshrEntry { line, targets: vec![target], issued: false, exclusive });
        self.peak = self.peak.max(self.entries.len());
        MshrAlloc::Primary
    }

    /// Next unissued entry, if any (FIFO order), marking it issued.
    pub fn next_to_issue(&mut self) -> Option<&mut MshrEntry<T>> {
        let entry = self.entries.iter_mut().find(|e| !e.issued)?;
        entry.issued = true;
        Some(entry)
    }

    /// Peek the next unissued entry without marking it.
    pub fn peek_unissued(&self) -> Option<&MshrEntry<T>> {
        self.entries.iter().find(|e| !e.issued)
    }

    /// The fill for `line` arrived: remove and return its entry.
    pub fn complete(&mut self, line: LineAddr) -> Option<MshrEntry<T>> {
        let idx = self.entries.iter().position(|e| e.line == line)?;
        Some(self.entries.remove(idx))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primary_then_secondary_merge() {
        let mut m: Mshr<u32> = Mshr::new(4, 4);
        let l = LineAddr(7);
        assert_eq!(m.allocate(l, 1, false), MshrAlloc::Primary);
        assert_eq!(m.allocate(l, 2, false), MshrAlloc::Secondary);
        assert_eq!(m.len(), 1);
        let e = m.complete(l).unwrap();
        assert_eq!(e.targets, vec![1, 2]);
        assert!(m.is_empty());
    }

    #[test]
    fn capacity_limits_primary_misses() {
        let mut m: Mshr<()> = Mshr::new(2, 4);
        assert_eq!(m.allocate(LineAddr(1), (), false), MshrAlloc::Primary);
        assert_eq!(m.allocate(LineAddr(2), (), false), MshrAlloc::Primary);
        assert_eq!(m.allocate(LineAddr(3), (), false), MshrAlloc::Full);
        // But merging into existing lines still works.
        assert_eq!(m.allocate(LineAddr(1), (), false), MshrAlloc::Secondary);
    }

    #[test]
    fn target_limit_stalls_merges() {
        let mut m: Mshr<u8> = Mshr::new(2, 2);
        let l = LineAddr(9);
        m.allocate(l, 0, false);
        m.allocate(l, 1, false);
        assert_eq!(m.allocate(l, 2, false), MshrAlloc::Full);
    }

    #[test]
    fn exclusive_promotion_sticks() {
        let mut m: Mshr<u8> = Mshr::new(2, 4);
        let l = LineAddr(3);
        m.allocate(l, 0, false);
        m.allocate(l, 1, true); // store merges into read miss
        assert!(m.get(l).unwrap().exclusive);
    }

    #[test]
    fn issue_order_is_fifo_and_once() {
        let mut m: Mshr<u8> = Mshr::new(4, 4);
        m.allocate(LineAddr(1), 0, false);
        m.allocate(LineAddr(2), 0, false);
        assert_eq!(m.next_to_issue().unwrap().line, LineAddr(1));
        assert_eq!(m.next_to_issue().unwrap().line, LineAddr(2));
        assert!(m.next_to_issue().is_none());
    }

    #[test]
    fn peak_tracks_high_water_mark() {
        let mut m: Mshr<u8> = Mshr::new(4, 4);
        m.allocate(LineAddr(1), 0, false);
        m.allocate(LineAddr(2), 0, false);
        m.complete(LineAddr(1));
        m.complete(LineAddr(2));
        assert_eq!(m.peak(), 2);
        assert!(m.is_empty());
    }
}
