//! Always-on shadow tag directory.
//!
//! To decompose the L2 miss rate into baseline misses vs. misses *induced*
//! by a leakage technique, the simulator maintains a shadow tag array per
//! L2 that sees the same reference stream but never turns lines off and
//! never suffers coherence invalidations from turn-offs. A real miss whose
//! tag hits in the shadow directory would have hit in the unoptimized
//! cache — it was induced by the technique.
//!
//! The shadow directory carries tags only (no data, no coherence state);
//! it is measurement infrastructure, not part of the simulated hardware,
//! and its energy is never charged.

use crate::addr::{Geometry, LineAddr};
use crate::array::{LineMeta, LookupOutcome, SetAssocArray};
use crate::bank::BankArena;

#[derive(Default, Clone, Debug)]
struct Present(bool);

impl LineMeta for Present {
    fn is_valid(&self) -> bool {
        self.0
    }
    fn to_byte(&self) -> u8 {
        self.0.into()
    }
    fn from_byte(b: u8) -> Self {
        Present(b != 0)
    }
}

/// Tag-only mirror of a cache with baseline (always-on) behaviour.
#[derive(Debug, Clone)]
pub struct ShadowTags {
    tags: SetAssocArray<Present>,
}

impl ShadowTags {
    /// A shadow directory with the same geometry as the cache it mirrors.
    pub fn new(geom: Geometry) -> Self {
        Self { tags: SetAssocArray::new(geom) }
    }

    /// Like [`ShadowTags::new`], with the tag columns checked out of
    /// `arena`.
    pub fn new_in(geom: Geometry, arena: &mut BankArena) -> Self {
        Self { tags: SetAssocArray::new_in(geom, arena) }
    }

    /// Return the arena-backed columns.
    pub fn release_into(&mut self, arena: &mut BankArena) {
        self.tags.release_into(arena);
    }

    /// Record an access (read or write) to `line`, updating shadow
    /// residency and LRU exactly as the baseline cache would. Returns
    /// `true` if the baseline would have hit.
    pub fn access(&mut self, line: LineAddr) -> bool {
        match self.tags.lookup(line) {
            LookupOutcome::Hit(_) => true,
            LookupOutcome::Miss => {
                let v = self.tags.victim(line);
                self.tags.fill(v, line, Present(true));
                false
            }
        }
    }

    /// Record an invalidation the *baseline* cache would also experience
    /// (a genuine coherence invalidation from another core's write, as
    /// opposed to one induced by a turn-off technique).
    pub fn invalidate(&mut self, line: LineAddr) {
        if let LookupOutcome::Hit(slot) = self.tags.probe(line) {
            self.tags.invalidate(slot);
        }
    }

    /// Would the baseline cache hold `line` right now?
    pub fn would_hit(&self, line: LineAddr) -> bool {
        matches!(self.tags.probe(line), LookupOutcome::Hit(_))
    }

    /// Number of lines the baseline would currently hold.
    pub fn resident(&self) -> usize {
        self.tags.valid_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shadow() -> ShadowTags {
        ShadowTags::new(Geometry::new(512, 64, 2)) // 4 sets x 2 ways
    }

    #[test]
    fn tracks_baseline_residency() {
        let mut s = shadow();
        assert!(!s.access(LineAddr(1)));
        assert!(s.access(LineAddr(1)));
        assert!(s.would_hit(LineAddr(1)));
    }

    #[test]
    fn respects_capacity_and_lru() {
        let mut s = shadow();
        // Three lines in the same set (4 sets => stride 4).
        s.access(LineAddr(0));
        s.access(LineAddr(4));
        s.access(LineAddr(0)); // 4 is now LRU
        s.access(LineAddr(8)); // evicts 4
        assert!(s.would_hit(LineAddr(0)));
        assert!(!s.would_hit(LineAddr(4)));
        assert!(s.would_hit(LineAddr(8)));
    }

    #[test]
    fn genuine_invalidations_propagate() {
        let mut s = shadow();
        s.access(LineAddr(3));
        s.invalidate(LineAddr(3));
        assert!(!s.would_hit(LineAddr(3)));
        assert_eq!(s.resident(), 0);
    }
}
