//! Equivalence of the word-packed [`LineStateBank`]/[`BitSet`] layer
//! with a naive `Vec<bool>` reference model.
//!
//! The columnar bank claims its packed bitset operations — set, clear,
//! popcount, set-bit iteration, and the derived power/decay state
//! transitions — are observationally identical to three plain boolean
//! vectors. Every simulation result in the workspace now rests on that
//! claim, so it is pinned here under random operation sequences.

use cmpleak_mem::{BitSet, LineStateBank};
use proptest::prelude::*;

/// Naive model of the three bit columns plus power accounting.
struct NaiveBank {
    powered: Vec<bool>,
    armed: Vec<bool>,
    live: Vec<bool>,
    powered_since: Vec<u64>,
    on_cycles: Vec<u64>,
}

impl NaiveBank {
    fn new(lines: usize) -> Self {
        Self {
            powered: vec![false; lines],
            armed: vec![true; lines],
            live: vec![false; lines],
            powered_since: vec![0; lines],
            on_cycles: vec![0; lines],
        }
    }

    fn power_on(&mut self, slot: usize, now: u64) {
        if !self.powered[slot] {
            self.powered[slot] = true;
            self.powered_since[slot] = now;
        }
    }

    fn power_off(&mut self, slot: usize, now: u64) {
        if self.powered[slot] {
            self.powered[slot] = false;
            self.on_cycles[slot] += now - self.powered_since[slot];
        }
    }

    fn finish_on_cycles(&mut self, now: u64) -> u64 {
        for slot in 0..self.powered.len() {
            if self.powered[slot] {
                self.on_cycles[slot] += now - self.powered_since[slot];
                self.powered_since[slot] = now;
            }
        }
        self.on_cycles.iter().sum()
    }
}

/// One step of the random op sequence.
#[derive(Debug, Clone)]
enum Op {
    PowerOn(usize),
    PowerOff(usize),
    Arm(usize),
    Disarm(usize),
    SetLive(usize),
    ClearLive(usize),
}

proptest! {
    /// BitSet vs `Vec<bool>`: set/clear/get/popcount/iteration agree
    /// under any op sequence, for lengths that land on and off word and
    /// `u64×4` chunk boundaries.
    #[test]
    fn bitset_matches_bool_vec(
        len in 1usize..400,
        ops in proptest::collection::vec((0usize..400, any::<bool>()), 1..300),
    ) {
        let mut packed = BitSet::new(len);
        let mut naive = vec![false; len];
        for (slot, on) in ops {
            let slot = slot % len;
            if on {
                packed.set(slot);
                naive[slot] = true;
            } else {
                packed.clear(slot);
                naive[slot] = false;
            }
            prop_assert_eq!(packed.get(slot), naive[slot]);
        }
        let expected_count = naive.iter().filter(|&&b| b).count() as u64;
        prop_assert_eq!(packed.count_ones(), expected_count, "popcount diverged");
        let expected_ones: Vec<usize> =
            (0..len).filter(|&i| naive[i]).collect();
        prop_assert_eq!(packed.iter_ones().collect::<Vec<_>>(), expected_ones,
            "set-bit iteration diverged");
        for (i, &bit) in naive.iter().enumerate() {
            prop_assert_eq!(packed.get(i), bit, "bit {} diverged", i);
        }
    }

    /// LineStateBank vs the naive three-vector model: every bit column
    /// and the on-cycle integral agree under random interleavings of
    /// power flips, arm/disarm, and live transitions with advancing
    /// time; checked at every step via per-slot probes and at the end
    /// via popcount and the closed-books integral.
    #[test]
    fn line_state_bank_matches_naive_model(
        lines in 1usize..300,
        ops in proptest::collection::vec((0usize..300, 0u8..6, 1u64..50), 1..200),
    ) {
        let mut bank = LineStateBank::new(lines);
        let mut naive = NaiveBank::new(lines);
        let mut now = 0u64;
        for (slot, kind, dt) in ops {
            now += dt;
            let op = match kind {
                0 => Op::PowerOn(slot % lines),
                1 => Op::PowerOff(slot % lines),
                2 => Op::Arm(slot % lines),
                3 => Op::Disarm(slot % lines),
                4 => Op::SetLive(slot % lines),
                _ => Op::ClearLive(slot % lines),
            };
            match op {
                Op::PowerOn(s) => { bank.power_on(s, now); naive.power_on(s, now); }
                Op::PowerOff(s) => { bank.power_off(s, now); naive.power_off(s, now); }
                Op::Arm(s) => { bank.arm(s); naive.armed[s] = true; }
                Op::Disarm(s) => { bank.disarm(s); naive.armed[s] = false; }
                Op::SetLive(s) => { bank.set_live(s); naive.live[s] = true; }
                Op::ClearLive(s) => { bank.clear_live(s); naive.live[s] = false; }
            }
            let expected_powered = naive.powered.iter().filter(|&&b| b).count() as u64;
            prop_assert_eq!(bank.powered_count(), expected_powered);
        }
        for s in 0..lines {
            prop_assert_eq!(bank.is_powered(s), naive.powered[s], "powered[{}]", s);
            prop_assert_eq!(bank.is_armed(s), naive.armed[s], "armed[{}]", s);
            prop_assert_eq!(bank.is_live(s), naive.live[s], "live[{}]", s);
        }
        let expected_live = naive.live.iter().filter(|&&b| b).count() as u64;
        prop_assert_eq!(bank.live_count(), expected_live);
        now += 17;
        prop_assert_eq!(bank.finish_on_cycles(now), naive.finish_on_cycles(now),
            "on-cycle integral diverged");
    }

    /// The tickable mask (`live & armed`) exposed word-by-word for the
    /// decay scan equals the naive element-wise AND.
    #[test]
    fn tickable_words_equal_elementwise_and(
        lines in 1usize..300,
        flips in proptest::collection::vec((0usize..300, 0u8..4), 1..150),
    ) {
        let mut bank = LineStateBank::new(lines);
        let mut naive = NaiveBank::new(lines);
        for (slot, kind) in flips {
            let s = slot % lines;
            match kind {
                0 => { bank.set_live(s); naive.live[s] = true; }
                1 => { bank.clear_live(s); naive.live[s] = false; }
                2 => { bank.arm(s); naive.armed[s] = true; }
                _ => { bank.disarm(s); naive.armed[s] = false; }
            }
        }
        let mut from_words = Vec::new();
        for w in 0..bank.word_count() {
            let mut bits = bank.tickable_word(w);
            while bits != 0 {
                from_words.push(w * 64 + bits.trailing_zeros() as usize);
                bits &= bits - 1;
            }
        }
        let expected: Vec<usize> =
            (0..lines).filter(|&i| naive.live[i] && naive.armed[i]).collect();
        prop_assert_eq!(from_words, expected);
    }
}
