//! Property-based tests for the memory structures, checked against
//! straightforward reference models.

use cmpleak_mem::array::LineMeta;
use cmpleak_mem::{
    DecayBank, DecayConfig, Geometry, LineAddr, LineStateBank, LookupOutcome, Mshr, MshrAlloc,
    SetAssocArray, WriteBuffer,
};
use proptest::prelude::*;
use std::collections::{HashMap, HashSet, VecDeque};

#[derive(Default, Clone, Debug)]
struct V(bool);
impl LineMeta for V {
    fn is_valid(&self) -> bool {
        self.0
    }
    fn to_byte(&self) -> u8 {
        self.0.into()
    }
    fn from_byte(b: u8) -> Self {
        V(b != 0)
    }
}

/// Reference model of a set-associative LRU cache: per set, a VecDeque
/// ordered MRU-first.
#[derive(Default)]
struct RefCache {
    sets: HashMap<usize, VecDeque<u64>>,
    assoc: usize,
}

impl RefCache {
    fn access(&mut self, set: usize, line: u64) -> bool {
        let q = self.sets.entry(set).or_default();
        if let Some(pos) = q.iter().position(|&l| l == line) {
            q.remove(pos);
            q.push_front(line);
            true
        } else {
            q.push_front(line);
            if q.len() > self.assoc {
                q.pop_back();
            }
            false
        }
    }
}

proptest! {
    /// The tag array under a lookup+fill-on-miss discipline behaves
    /// exactly like the reference LRU model.
    #[test]
    fn tag_array_matches_reference_lru(
        addrs in proptest::collection::vec(0u64..4096, 1..500)
    ) {
        let geom = Geometry::new(4096, 64, 4); // 16 sets x 4 ways
        let mut arr: SetAssocArray<V> = SetAssocArray::new(geom);
        let mut reference = RefCache { assoc: 4, ..Default::default() };
        for a in addrs {
            let line = geom.line_of(a * 64);
            let set = geom.set_index(line);
            let model_hit = reference.access(set, line.0);
            let real_hit = match arr.lookup(line) {
                LookupOutcome::Hit(_) => true,
                LookupOutcome::Miss => {
                    let v = arr.victim(line);
                    arr.fill(v, line, V(true));
                    false
                }
            };
            prop_assert_eq!(model_hit, real_hit, "divergence at line {}", line.0);
        }
    }

    /// Valid-count never exceeds capacity and matches the set union of
    /// installed-minus-invalidated lines.
    #[test]
    fn valid_count_is_consistent(
        ops in proptest::collection::vec((0u64..512, any::<bool>()), 1..300)
    ) {
        let geom = Geometry::new(2048, 64, 2);
        let mut arr: SetAssocArray<V> = SetAssocArray::new(geom);
        for (a, invalidate) in ops {
            let line = geom.line_of(a * 64);
            match arr.probe(line) {
                LookupOutcome::Hit(slot) if invalidate => arr.invalidate(slot),
                LookupOutcome::Hit(slot) => arr.touch(slot),
                LookupOutcome::Miss => {
                    let v = arr.victim(line);
                    arr.fill(v, line, V(true));
                }
            }
            prop_assert!(arr.valid_count() <= geom.lines());
            // No duplicate tags among valid lines.
            let tags: Vec<u64> =
                arr.iter().filter(|(_, l)| l.meta.is_valid()).map(|(_, l)| l.tag.0).collect();
            let set: HashSet<u64> = tags.iter().copied().collect();
            prop_assert_eq!(tags.len(), set.len(), "duplicate resident tag");
        }
    }

    /// Decay bank: a line never decays sooner than `decay - tick` cycles
    /// after its last access, and always decays within `decay + tick`
    /// if untouched, regardless of the access pattern.
    #[test]
    fn decay_window_is_tight(
        accesses in proptest::collection::vec(0u64..10_000, 1..50),
        decay_exp in 10u32..16,
    ) {
        let decay = 1u64 << decay_exp;
        let cfg = DecayConfig::fixed(decay);
        let tick = cfg.tick_period();
        let mut bank = DecayBank::new(cfg);
        let mut st = LineStateBank::new(1);
        let mut sorted = accesses.clone();
        sorted.sort_unstable();
        let mut out = Vec::new();
        let mut last = 0u64;
        for t in sorted {
            bank.advance(&mut st, t, &mut out);
            for &slot in &out {
                prop_assert_eq!(slot, 0);
            }
            if !out.is_empty() {
                // Decay must not fire before decay - tick since last access.
                prop_assert!(t >= last + decay - tick,
                    "decayed at {t}, last access {last}, window {decay}±{tick}");
                out.clear();
            }
            bank.on_access(&mut st, 0);
            last = t;
        }
        // Untouched line decays within one window past last access.
        let mut fired = Vec::new();
        bank.advance(&mut st, last + decay + tick, &mut fired);
        prop_assert_eq!(fired, vec![0usize], "line must decay after going idle");
    }

    /// Decay bank: the closed-form bulk advance (`advance_to`) is
    /// indistinguishable from sequential per-tick advancing — same
    /// decayed slots in the same emission order, same counter values,
    /// same `DecayStats` — under arbitrary interleavings of accesses,
    /// arm/disarm flips, line turn-offs and coarse time jumps.
    #[test]
    fn decay_bulk_advance_equals_sequential_ticks(
        ops in proptest::collection::vec((0u64..8, 0u64..5000u64, 0u8..4), 1..80),
        decay_exp in 9u32..14,
        bits in 1u32..4,
    ) {
        let cfg = DecayConfig { decay_cycles: 1 << decay_exp, counter_bits: bits };
        let mut seq = DecayBank::new(cfg);
        let mut seq_st = LineStateBank::new(8);
        let mut bulk = DecayBank::new(cfg);
        let mut bulk_st = LineStateBank::new(8);
        let mut now = 0u64;
        for (slot, dt, op) in ops {
            now += dt;
            let slot = slot as usize;
            // Sequential reference ticks one by one; bulk jumps straight
            // to `now` in closed form. Fired slots must match exactly.
            let mut a = Vec::new();
            seq.advance(&mut seq_st, now, &mut a);
            let mut b = Vec::new();
            bulk.advance_to(&mut bulk_st, now, &mut b);
            prop_assert_eq!(&a, &b, "divergent decay emission at t={}", now);
            prop_assert_eq!(seq.stats(), bulk.stats());
            prop_assert_eq!(seq.next_tick_at(), bulk.next_tick_at());
            match op {
                0 => { seq.on_access(&mut seq_st, slot); bulk.on_access(&mut bulk_st, slot); }
                1 => { seq_st.arm(slot); bulk_st.arm(slot); }
                2 => { seq_st.disarm(slot); bulk_st.disarm(slot); }
                _ => { seq.on_line_off(&mut seq_st, slot); bulk.on_line_off(&mut bulk_st, slot); }
            }
            prop_assert_eq!(seq_st.is_live(slot), bulk_st.is_live(slot));
            prop_assert_eq!(seq_st.is_armed(slot), bulk_st.is_armed(slot));
            prop_assert_eq!(seq_st.counter(slot), bulk_st.counter(slot));
        }
    }

    /// MSHR: merged targets always come back complete and in insertion
    /// order; capacity is respected.
    #[test]
    fn mshr_preserves_targets(
        reqs in proptest::collection::vec((0u64..8, 0u32..100), 1..60)
    ) {
        let mut mshr: Mshr<u32> = Mshr::new(4, 64);
        let mut expected: HashMap<u64, Vec<u32>> = HashMap::new();
        for (line, tag) in reqs {
            match mshr.allocate(LineAddr(line), tag, false) {
                MshrAlloc::Primary | MshrAlloc::Secondary => {
                    expected.entry(line).or_default().push(tag);
                }
                MshrAlloc::Full => {}
            }
            prop_assert!(mshr.len() <= 4);
        }
        let lines: Vec<u64> = expected.keys().copied().collect();
        for line in lines {
            if let Some(entry) = mshr.complete(LineAddr(line)) {
                prop_assert_eq!(&entry.targets, expected.get(&line).unwrap());
            }
        }
        prop_assert!(mshr.is_empty());
    }

    /// Write buffer: drains in FIFO order of first-store per line, never
    /// holds duplicates, never exceeds capacity.
    #[test]
    fn write_buffer_fifo_and_coalescing(
        stores in proptest::collection::vec(0u64..16, 1..100)
    ) {
        let mut wb = WriteBuffer::new(4);
        let mut model: VecDeque<u64> = VecDeque::new();
        for s in stores {
            let accepted = wb.push(LineAddr(s));
            let in_model = model.contains(&s);
            if in_model {
                prop_assert!(accepted, "coalescing store must be accepted");
            } else if model.len() < 4 {
                prop_assert!(accepted);
                model.push_back(s);
            } else {
                prop_assert!(!accepted, "full buffer must refuse");
            }
            prop_assert!(wb.len() <= 4);
            // Occasionally drain.
            if model.len() == 4 {
                let head = wb.pop();
                prop_assert_eq!(head.map(|l| l.0), model.pop_front());
            }
        }
        while let Some(l) = wb.pop() {
            prop_assert_eq!(Some(l.0), model.pop_front());
        }
        prop_assert!(model.is_empty());
    }

    /// Geometry round-trip: any address maps to a set within range and
    /// back to a line base inside the original line.
    #[test]
    fn geometry_roundtrip(addr in any::<u64>()) {
        let geom = Geometry::new(1 << 20, 64, 8);
        let line = geom.line_of(addr & ((1 << 48) - 1));
        let set = geom.set_index(line);
        prop_assert!(set < geom.sets());
        let base = line.byte_base(64);
        prop_assert_eq!(base >> 6 << 6, base);
        prop_assert_eq!(geom.line_of(base), line);
    }

    /// Write buffer under *interleaved* pushes and drains: statistics
    /// stay consistent (`len = stores − coalesced − drained`), stalls
    /// are counted exactly when a non-coalescing store meets a full
    /// buffer, coalescing keeps working at capacity, and `has_pending`
    /// agrees with a reference set.
    #[test]
    fn write_buffer_edge_cases_under_interleaving(
        events in proptest::collection::vec((0u64..6, 0u32..4), 1..200),
        capacity in 1usize..5,
    ) {
        let mut wb = WriteBuffer::new(capacity);
        let mut model: VecDeque<u64> = VecDeque::new();
        let (mut stalls, mut accepted, mut coalesced, mut drained) = (0u64, 0u64, 0u64, 0u64);
        for (line, action) in events {
            if action == 0 {
                // Drain one entry.
                let popped = wb.pop();
                prop_assert_eq!(popped.map(|l| l.0), model.pop_front());
                drained += u64::from(popped.is_some());
                continue;
            }
            let was_full = model.len() >= capacity;
            let coalesces = model.contains(&line);
            let ok = wb.push(LineAddr(line));
            if coalesces {
                prop_assert!(ok, "coalescing must succeed even at capacity");
                accepted += 1;
                coalesced += 1;
            } else if was_full {
                prop_assert!(!ok, "full buffer must refuse a fresh line");
                stalls += 1;
            } else {
                prop_assert!(ok);
                accepted += 1;
                model.push_back(line);
            }
            for l in 0..6u64 {
                prop_assert_eq!(
                    wb.has_pending(LineAddr(l)),
                    model.contains(&l),
                    "has_pending({}) disagrees with the reference", l
                );
            }
        }
        let stats = wb.stats();
        prop_assert_eq!(stats.stores, accepted);
        prop_assert_eq!(stats.coalesced, coalesced);
        prop_assert_eq!(stats.drained, drained);
        prop_assert_eq!(stats.full_stalls, stalls);
        prop_assert_eq!(wb.len() as u64, accepted - coalesced - drained);
    }

    /// MSHR allocation at the capacity boundary: entry-full and
    /// target-full both report `Full` without mutating state, secondary
    /// merges keep working while the file is entry-full, exclusivity is
    /// sticky once any merged request asked for it, and issue order is
    /// FIFO-once regardless of completion order.
    #[test]
    fn mshr_edge_cases_at_capacity(
        lines in proptest::collection::vec(0u64..6, 1..40),
        max_targets in 1usize..4,
    ) {
        let mut mshr: Mshr<u32> = Mshr::new(2, max_targets);
        let mut targets: HashMap<u64, Vec<u32>> = HashMap::new();
        let mut exclusive: HashMap<u64, bool> = HashMap::new();
        let mut order: Vec<u64> = Vec::new();
        for (i, line) in lines.iter().copied().enumerate() {
            let tag = i as u32;
            let want_excl = i % 3 == 0;
            let before_len = mshr.len();
            match mshr.allocate(LineAddr(line), tag, want_excl) {
                MshrAlloc::Primary => {
                    prop_assert!(before_len < 2, "primary may not exceed capacity");
                    prop_assert!(!targets.contains_key(&line));
                    targets.insert(line, vec![tag]);
                    exclusive.insert(line, want_excl);
                    order.push(line);
                }
                MshrAlloc::Secondary => {
                    let t = targets.get_mut(&line).expect("secondary implies existing entry");
                    prop_assert!(t.len() < max_targets, "merge beyond target cap");
                    t.push(tag);
                    let e = exclusive.get_mut(&line).unwrap();
                    *e |= want_excl;
                }
                MshrAlloc::Full => {
                    let entry_full = !targets.contains_key(&line) && before_len >= 2;
                    let target_full =
                        targets.get(&line).is_some_and(|t| t.len() >= max_targets);
                    prop_assert!(entry_full || target_full, "Full only at a real limit");
                    prop_assert_eq!(mshr.len(), before_len, "Full must not mutate");
                }
            }
        }
        // Issue order is FIFO over primaries, each issued exactly once.
        let mut issued = Vec::new();
        while let Some(e) = mshr.next_to_issue() {
            issued.push(e.line.0);
        }
        prop_assert_eq!(&issued, &order, "FIFO issue order");
        prop_assert!(mshr.next_to_issue().is_none(), "issue happens once");
        prop_assert!(mshr.peek_unissued().is_none());
        // Complete in reverse order: targets and exclusivity intact.
        for line in order.iter().rev() {
            let e = mshr.complete(LineAddr(*line)).expect("entry present");
            prop_assert_eq!(&e.targets, targets.get(line).unwrap());
            prop_assert_eq!(e.exclusive, exclusive[line], "exclusivity must be sticky");
            prop_assert!(e.issued);
        }
        prop_assert!(mshr.is_empty());
        prop_assert!(mshr.complete(LineAddr(0)).is_none(), "double complete is None");
    }
}
