//! Bake a fingerprint of the whole workspace's simulation sources into
//! the store crate, so every persisted cell key is implicitly versioned
//! by the code that produced it.
//!
//! Any edit to any `cmpleak-*` source (or the facade) changes the
//! fingerprint, which changes every [`CellKey`] hash, which makes every
//! previously stored record a *silent miss* — the safe direction: stale
//! results can never be served after a behaviour-relevant change, at
//! the cost of re-simulating after behaviour-irrelevant ones. The
//! vendored dependency stubs are excluded: they are serialization and
//! test scaffolding, not simulation state.

use std::fs;
use std::path::{Path, PathBuf};

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv(h: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *h ^= u64::from(b);
        *h = h.wrapping_mul(FNV_PRIME);
    }
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else { return };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            collect_rs(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

fn main() {
    let workspace = Path::new("../..");
    let mut files: Vec<PathBuf> = Vec::new();
    collect_rs(&workspace.join("src"), &mut files);
    if let Ok(crates) = fs::read_dir(workspace.join("crates")) {
        for entry in crates.flatten() {
            collect_rs(&entry.path().join("src"), &mut files);
        }
    }
    files.sort();

    let mut h = FNV_OFFSET;
    for file in &files {
        fnv(&mut h, file.to_string_lossy().as_bytes());
        if let Ok(bytes) = fs::read(file) {
            fnv(&mut h, &(bytes.len() as u64).to_le_bytes());
            fnv(&mut h, &bytes);
        }
    }

    println!("cargo:rustc-env=CMPLEAK_CODE_FINGERPRINT={h:016x}");
    // Directory-level rerun: cargo walks these recursively, so any
    // source edit anywhere in the stack re-derives the fingerprint.
    println!("cargo:rerun-if-changed=../../src");
    println!("cargo:rerun-if-changed=../../crates");
}
