//! The on-disk store: one file per cell under a two-level fan-out
//! (`<root>/<hh>/<rest>.cmps`), written atomically via temp-file +
//! rename so concurrent publishers and readers never observe a partial
//! record.

use crate::hash::CellKey;
use crate::record::{decode_record, encode_record, StoredCell};
use cmpleak_power::PowerReport;
use cmpleak_system::SimStats;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// A content-addressed result store rooted at a directory.
///
/// All failure modes on the read path — missing file, unreadable file,
/// corrupt or truncated record, schema or fingerprint skew — surface as
/// `None` from [`ResultStore::load`], i.e. a cache miss. The write path
/// is best-effort: a failed publish loses the warm-up, never the
/// result.
#[derive(Debug)]
pub struct ResultStore {
    root: PathBuf,
    seq: AtomicU64,
}

impl ResultStore {
    /// Open (creating if needed) a store rooted at `root`.
    pub fn open(root: impl Into<PathBuf>) -> std::io::Result<Self> {
        let root = root.into();
        fs::create_dir_all(&root)?;
        Ok(Self { root, seq: AtomicU64::new(0) })
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The file a cell lives at: two-hex-digit fan-out directory, then
    /// the remaining 30 digits of the content address.
    pub fn path_of(&self, key: &CellKey) -> PathBuf {
        let hex = key.hex();
        self.root.join(&hex[..2]).join(format!("{}.cmps", &hex[2..]))
    }

    /// Whether a record file exists for `key` (without validating it).
    pub fn contains(&self, key: &CellKey) -> bool {
        self.path_of(key).is_file()
    }

    /// Load and fully validate the cell for `key`. Any anomaly is a
    /// silent miss.
    pub fn load(&self, key: &CellKey) -> Option<StoredCell> {
        let bytes = fs::read(self.path_of(key)).ok()?;
        decode_record(&bytes, key)
    }

    /// Publish a cell, overwriting any existing record — a republish
    /// after a validation miss repairs corrupt files in place. Atomic
    /// via a unique temp file in the same directory plus rename.
    pub fn publish(
        &self,
        key: &CellKey,
        stats: &SimStats,
        power: &PowerReport,
    ) -> std::io::Result<()> {
        let hex = key.hex();
        let dir = self.root.join(&hex[..2]);
        let dest = dir.join(format!("{}.cmps", &hex[2..]));
        fs::create_dir_all(&dir)?;
        let tmp = dir.join(format!(
            "tmp-{}-{}",
            std::process::id(),
            self.seq.fetch_add(1, Ordering::Relaxed)
        ));
        fs::write(&tmp, encode_record(key, stats, power))?;
        fs::rename(&tmp, &dest).inspect_err(|_| {
            fs::remove_file(&tmp).ok();
        })
    }

    /// Publish only if no record file exists yet — used for derived
    /// cells so fully-warm sweeps stay write-free.
    pub fn publish_if_absent(
        &self,
        key: &CellKey,
        stats: &SimStats,
        power: &PowerReport,
    ) -> std::io::Result<()> {
        if self.contains(key) {
            return Ok(());
        }
        self.publish(key, stats, power)
    }

    /// Count record files currently in the store (test/diagnostic aid).
    pub fn record_count(&self) -> usize {
        fn walk(dir: &Path, n: &mut usize) {
            let Ok(entries) = fs::read_dir(dir) else { return };
            for entry in entries.flatten() {
                let path = entry.path();
                if path.is_dir() {
                    walk(&path, n);
                } else if path.extension().is_some_and(|e| e == "cmps") {
                    *n += 1;
                }
            }
        }
        let mut n = 0;
        walk(&self.root, &mut n);
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::KeyHasher;
    use cmpleak_power::EnergyBreakdown;

    fn tmp_root(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("cmpleak-store-test-{tag}-{}", std::process::id()));
        fs::remove_dir_all(&dir).ok();
        dir
    }

    fn cell() -> (SimStats, PowerReport) {
        let stats = SimStats { cycles: 42, instructions: 99, ..Default::default() };
        let power = PowerReport {
            energy: EnergyBreakdown { core_dynamic_pj: 1.0, ..Default::default() },
            avg_l2_temp_c: 45.0,
            peak_temp_c: 47.5,
            avg_power_w: 3.25,
        };
        (stats, power)
    }

    fn key(tag: &str) -> CellKey {
        let mut h = KeyHasher::new();
        h.write_str(tag);
        h.finish(tag)
    }

    #[test]
    fn publish_then_load_roundtrips() {
        let store = ResultStore::open(tmp_root("roundtrip")).unwrap();
        let (stats, power) = cell();
        let k = key("a");
        assert!(store.load(&k).is_none(), "empty store misses");
        assert!(!store.contains(&k));
        store.publish(&k, &stats, &power).unwrap();
        assert!(store.contains(&k));
        let got = store.load(&k).expect("published cell loads");
        assert_eq!(got.stats, stats);
        assert_eq!(got.power, power);
        assert_eq!(store.record_count(), 1);
        fs::remove_dir_all(store.root()).ok();
    }

    #[test]
    fn corrupt_record_is_a_silent_miss_and_republish_repairs_it() {
        let store = ResultStore::open(tmp_root("repair")).unwrap();
        let (stats, power) = cell();
        let k = key("b");
        store.publish(&k, &stats, &power).unwrap();
        let path = store.path_of(&k);
        let mut bytes = fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        fs::write(&path, &bytes).unwrap();
        assert!(store.load(&k).is_none(), "corruption must be a miss, not an error");
        store.publish(&k, &stats, &power).unwrap();
        assert_eq!(store.load(&k).expect("repaired").stats, stats);
        fs::remove_dir_all(store.root()).ok();
    }

    #[test]
    fn publish_if_absent_does_not_rewrite() {
        let store = ResultStore::open(tmp_root("absent")).unwrap();
        let (stats, power) = cell();
        let k = key("c");
        store.publish_if_absent(&k, &stats, &power).unwrap();
        let before = fs::metadata(store.path_of(&k)).unwrap().modified().unwrap();
        let (other, _) = cell();
        store.publish_if_absent(&k, &other, &power).unwrap();
        let after = fs::metadata(store.path_of(&k)).unwrap().modified().unwrap();
        assert_eq!(before, after, "existing record must be left untouched");
        fs::remove_dir_all(store.root()).ok();
    }

    #[test]
    fn distinct_keys_distinct_files() {
        let store = ResultStore::open(tmp_root("distinct")).unwrap();
        assert_ne!(store.path_of(&key("x")), store.path_of(&key("y")));
        fs::remove_dir_all(store.root()).ok();
    }
}
