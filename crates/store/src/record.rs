//! The versioned on-disk record: `SimStats` + `PowerReport` in a fixed
//! little-endian binary layout, wrapped in a checked header.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! offset 0   magic          b"CMPS"
//!        4   schema         u32   (STORE_SCHEMA_VERSION)
//!        8   key hash       2×u64 (the CellKey's 128-bit address)
//!        24  meta           u64 len + bytes (CellKey descriptor)
//!        …   fingerprint    u64 len + bytes (code fingerprint)
//!        …   payload_len    u64
//!        …   checksum       u64   (FNV-1a over the payload bytes)
//!        …   payload        encoded SimStats + PowerReport
//! ```
//!
//! Decoding is *fully defensive*: every read is bounds-checked, every
//! header field is verified against the requesting key and the current
//! build, vector lengths are sanity-capped against the remaining bytes,
//! and trailing garbage is rejected. Any anomaly — truncation, bit
//! corruption, schema or fingerprint skew, a colliding-but-different
//! key — returns `None`, which callers treat as a cache miss. A record
//! can therefore change *latency*, never *results*.

use crate::hash::{code_fingerprint, CellKey, STORE_SCHEMA_VERSION};
use cmpleak_power::{EnergyBreakdown, PowerReport};
use cmpleak_system::{CoreStats, IntervalActivity, L1Stats, L2Stats, SimStats};

/// One cell loaded back out of the store.
#[derive(Debug, Clone, PartialEq)]
pub struct StoredCell {
    /// The simulator statistics, bit-identical to the run that
    /// published them.
    pub stats: SimStats,
    /// The energy/thermal evaluation of that run.
    pub power: PowerReport,
}

const MAGIC: &[u8; 4] = b"CMPS";

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

// ---- encoding ---------------------------------------------------------

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    put_u64(out, v.to_bits());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u64(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

fn put_core(out: &mut Vec<u8>, c: &CoreStats) {
    for v in [
        c.instructions,
        c.active_cycles,
        c.window_stall_cycles,
        c.reject_stall_cycles,
        c.loads,
        c.stores,
    ] {
        put_u64(out, v);
    }
}

fn put_l1(out: &mut Vec<u8>, s: &L1Stats) {
    for v in [
        s.loads,
        s.load_hits,
        s.stores,
        s.store_hits,
        s.back_invalidations,
        s.technique_back_invalidations,
    ] {
        put_u64(out, v);
    }
}

fn put_l2(out: &mut Vec<u8>, s: &L2Stats) {
    for v in [
        s.reads,
        s.writes,
        s.read_hits,
        s.write_hits,
        s.misses,
        s.induced_misses,
        s.snoop_invalidations,
        s.turnoffs_decay,
        s.turnoffs_protocol,
        s.dirty_decay_turnoffs,
        s.writebacks,
        s.evictions,
        s.fills,
        s.retries,
    ] {
        put_u64(out, v);
    }
}

fn put_interval(out: &mut Vec<u8>, iv: &IntervalActivity) {
    for v in [
        iv.cycles,
        iv.instructions,
        iv.l1_accesses,
        iv.l2_reads,
        iv.l2_writes,
        iv.bus_transactions,
        iv.bus_bytes,
        iv.mem_bytes,
        iv.l2_powered_line_cycles,
        iv.l2_total_line_cycles,
        iv.decay_counter_events,
    ] {
        put_u64(out, v);
    }
}

/// Encode the payload: `SimStats` then `PowerReport`, field by field in
/// a fixed order.
pub fn encode_payload(stats: &SimStats, power: &PowerReport) -> Vec<u8> {
    let mut out = Vec::with_capacity(256 + 64 * stats.trace.len());
    put_u64(&mut out, stats.cycles);
    put_u64(&mut out, stats.instructions);
    put_u64(&mut out, stats.cores.len() as u64);
    for c in &stats.cores {
        put_core(&mut out, c);
    }
    put_u64(&mut out, stats.core_workloads.len() as u64);
    for w in &stats.core_workloads {
        put_str(&mut out, w);
    }
    put_u64(&mut out, stats.l1.len() as u64);
    for s in &stats.l1 {
        put_l1(&mut out, s);
    }
    put_u64(&mut out, stats.l2.len() as u64);
    for s in &stats.l2 {
        put_l2(&mut out, s);
    }
    for v in [
        stats.l2_on_line_cycles,
        stats.l2_line_cycle_capacity,
        stats.loads_completed,
        stats.load_latency_sum,
        stats.bus_transactions,
        stats.bus_busy_cycles,
        stats.mem_fills,
        stats.mem_writebacks,
        stats.mem_bytes,
        stats.c2c_transfers,
        stats.upper_invalidations,
    ] {
        put_u64(&mut out, v);
    }
    put_u64(&mut out, stats.trace.len() as u64);
    for iv in &stats.trace {
        put_interval(&mut out, iv);
    }
    for v in [
        power.energy.core_dynamic_pj,
        power.energy.l1_dynamic_pj,
        power.energy.l2_dynamic_pj,
        power.energy.bus_dynamic_pj,
        power.energy.l2_leakage_pj,
        power.energy.other_leakage_pj,
        power.energy.decay_dynamic_pj,
        power.energy.decay_leakage_pj,
        power.avg_l2_temp_c,
        power.peak_temp_c,
        power.avg_power_w,
    ] {
        put_f64(&mut out, v);
    }
    out
}

/// Encode a complete record for `key`.
pub fn encode_record(key: &CellKey, stats: &SimStats, power: &PowerReport) -> Vec<u8> {
    let payload = encode_payload(stats, power);
    let mut out = Vec::with_capacity(64 + key.meta.len() + payload.len());
    out.extend_from_slice(MAGIC);
    put_u32(&mut out, STORE_SCHEMA_VERSION);
    put_u64(&mut out, key.hash[0]);
    put_u64(&mut out, key.hash[1]);
    put_str(&mut out, &key.meta);
    put_str(&mut out, code_fingerprint());
    put_u64(&mut out, payload.len() as u64);
    put_u64(&mut out, fnv1a(&payload));
    out.extend_from_slice(&payload);
    out
}

// ---- decoding ---------------------------------------------------------

/// Bounds-checked little-endian reader. Every accessor returns `None`
/// past the end instead of panicking — corrupt input must never abort.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        let s = self.buf.get(self.pos..end)?;
        self.pos = end;
        Some(s)
    }

    fn u32(&mut self) -> Option<u32> {
        self.take(4).map(|b| u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Option<u64> {
        self.take(8).map(|b| u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }

    fn f64(&mut self) -> Option<f64> {
        self.u64().map(f64::from_bits)
    }

    fn string(&mut self) -> Option<String> {
        let len = self.u64()?;
        if len > self.remaining() as u64 {
            return None;
        }
        let bytes = self.take(len as usize)?;
        String::from_utf8(bytes.to_vec()).ok()
    }

    /// A length-prefixed vector whose elements occupy at least
    /// `min_elem_bytes` each: the length is sanity-capped against the
    /// remaining input so corrupt lengths cannot drive huge
    /// allocations.
    fn vec_of<T>(
        &mut self,
        min_elem_bytes: usize,
        mut elem: impl FnMut(&mut Self) -> Option<T>,
    ) -> Option<Vec<T>> {
        let len = self.u64()?;
        if len.checked_mul(min_elem_bytes as u64)? > self.remaining() as u64 {
            return None;
        }
        let mut out = Vec::with_capacity(len as usize);
        for _ in 0..len {
            out.push(elem(self)?);
        }
        Some(out)
    }
}

fn get_core(r: &mut Reader<'_>) -> Option<CoreStats> {
    Some(CoreStats {
        instructions: r.u64()?,
        active_cycles: r.u64()?,
        window_stall_cycles: r.u64()?,
        reject_stall_cycles: r.u64()?,
        loads: r.u64()?,
        stores: r.u64()?,
    })
}

fn get_l1(r: &mut Reader<'_>) -> Option<L1Stats> {
    Some(L1Stats {
        loads: r.u64()?,
        load_hits: r.u64()?,
        stores: r.u64()?,
        store_hits: r.u64()?,
        back_invalidations: r.u64()?,
        technique_back_invalidations: r.u64()?,
    })
}

fn get_l2(r: &mut Reader<'_>) -> Option<L2Stats> {
    Some(L2Stats {
        reads: r.u64()?,
        writes: r.u64()?,
        read_hits: r.u64()?,
        write_hits: r.u64()?,
        misses: r.u64()?,
        induced_misses: r.u64()?,
        snoop_invalidations: r.u64()?,
        turnoffs_decay: r.u64()?,
        turnoffs_protocol: r.u64()?,
        dirty_decay_turnoffs: r.u64()?,
        writebacks: r.u64()?,
        evictions: r.u64()?,
        fills: r.u64()?,
        retries: r.u64()?,
    })
}

fn get_interval(r: &mut Reader<'_>) -> Option<IntervalActivity> {
    Some(IntervalActivity {
        cycles: r.u64()?,
        instructions: r.u64()?,
        l1_accesses: r.u64()?,
        l2_reads: r.u64()?,
        l2_writes: r.u64()?,
        bus_transactions: r.u64()?,
        bus_bytes: r.u64()?,
        mem_bytes: r.u64()?,
        l2_powered_line_cycles: r.u64()?,
        l2_total_line_cycles: r.u64()?,
        decay_counter_events: r.u64()?,
    })
}

/// Decode a payload produced by [`encode_payload`]. Trailing bytes are
/// an error: a valid record is consumed exactly.
pub fn decode_payload(bytes: &[u8]) -> Option<StoredCell> {
    let mut r = Reader::new(bytes);
    let cycles = r.u64()?;
    let instructions = r.u64()?;
    let cores = r.vec_of(48, get_core)?;
    let core_workloads = r.vec_of(8, |r| r.string())?;
    let l1 = r.vec_of(48, get_l1)?;
    let l2 = r.vec_of(112, get_l2)?;
    let l2_on_line_cycles = r.u64()?;
    let l2_line_cycle_capacity = r.u64()?;
    let loads_completed = r.u64()?;
    let load_latency_sum = r.u64()?;
    let bus_transactions = r.u64()?;
    let bus_busy_cycles = r.u64()?;
    let mem_fills = r.u64()?;
    let mem_writebacks = r.u64()?;
    let mem_bytes = r.u64()?;
    let c2c_transfers = r.u64()?;
    let upper_invalidations = r.u64()?;
    let trace = r.vec_of(88, get_interval)?;
    let energy = EnergyBreakdown {
        core_dynamic_pj: r.f64()?,
        l1_dynamic_pj: r.f64()?,
        l2_dynamic_pj: r.f64()?,
        bus_dynamic_pj: r.f64()?,
        l2_leakage_pj: r.f64()?,
        other_leakage_pj: r.f64()?,
        decay_dynamic_pj: r.f64()?,
        decay_leakage_pj: r.f64()?,
    };
    let power = PowerReport {
        energy,
        avg_l2_temp_c: r.f64()?,
        peak_temp_c: r.f64()?,
        avg_power_w: r.f64()?,
    };
    if r.remaining() != 0 {
        return None;
    }
    Some(StoredCell {
        stats: SimStats {
            cycles,
            instructions,
            cores,
            core_workloads,
            l1,
            l2,
            l2_on_line_cycles,
            l2_line_cycle_capacity,
            loads_completed,
            load_latency_sum,
            bus_transactions,
            bus_busy_cycles,
            mem_fills,
            mem_writebacks,
            mem_bytes,
            c2c_transfers,
            upper_invalidations,
            trace,
        },
        power,
    })
}

/// Decode a complete record, verifying every header field against the
/// requesting `key` and the current build. Any mismatch is `None`.
pub fn decode_record(bytes: &[u8], key: &CellKey) -> Option<StoredCell> {
    let mut r = Reader::new(bytes);
    if r.take(4)? != MAGIC {
        return None;
    }
    if r.u32()? != STORE_SCHEMA_VERSION {
        return None;
    }
    if [r.u64()?, r.u64()?] != key.hash {
        return None;
    }
    if r.string()? != key.meta {
        return None;
    }
    if r.string()? != code_fingerprint() {
        return None;
    }
    let payload_len = r.u64()?;
    let checksum = r.u64()?;
    if payload_len != r.remaining() as u64 {
        return None;
    }
    let payload = r.take(payload_len as usize)?;
    if fnv1a(payload) != checksum {
        return None;
    }
    decode_payload(payload)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::KeyHasher;

    fn sample() -> (SimStats, PowerReport) {
        let stats = SimStats {
            cycles: 123_456,
            instructions: 240_000,
            cores: vec![
                CoreStats {
                    instructions: 120_000,
                    active_cycles: 100_000,
                    window_stall_cycles: 5_000,
                    reject_stall_cycles: 7,
                    loads: 30_000,
                    stores: 10_000,
                },
                CoreStats { instructions: 120_000, ..Default::default() },
            ],
            core_workloads: vec!["FMM".into(), "bursty".into()],
            l1: vec![L1Stats { loads: 30_000, load_hits: 29_000, ..Default::default() }; 2],
            l2: vec![
                L2Stats {
                    reads: 1_000,
                    writes: 400,
                    misses: 55,
                    turnoffs_decay: 12,
                    retries: 3,
                    ..Default::default()
                };
                2
            ],
            l2_on_line_cycles: 999,
            l2_line_cycle_capacity: 1234,
            loads_completed: 29_990,
            load_latency_sum: 120_011,
            bus_transactions: 77,
            bus_busy_cycles: 450,
            mem_fills: 40,
            mem_writebacks: 11,
            mem_bytes: 3264,
            c2c_transfers: 5,
            upper_invalidations: 9,
            trace: vec![
                IntervalActivity {
                    cycles: 10_000,
                    instructions: 20_000,
                    l2_powered_line_cycles: 88,
                    l2_total_line_cycles: 100,
                    ..Default::default()
                },
                IntervalActivity { cycles: 3_456, ..Default::default() },
            ],
        };
        let power = PowerReport {
            energy: EnergyBreakdown {
                core_dynamic_pj: 1.5e9,
                l1_dynamic_pj: 2.5e8,
                l2_dynamic_pj: 1.25e8,
                bus_dynamic_pj: 1.0e7,
                l2_leakage_pj: 4.0e8,
                other_leakage_pj: 6.0e6,
                decay_dynamic_pj: 1.0e5,
                decay_leakage_pj: 2.0e5,
            },
            avg_l2_temp_c: 58.25,
            peak_temp_c: 61.0,
            avg_power_w: 12.5,
        };
        (stats, power)
    }

    fn key() -> CellKey {
        let mut h = KeyHasher::new();
        h.write_str("FMM/decay64K@1MB");
        h.finish("FMM/decay64K@1MB i40000 s42 c2")
    }

    #[test]
    fn record_roundtrips_bit_identically() {
        let (stats, power) = sample();
        let k = key();
        let rec = encode_record(&k, &stats, &power);
        let cell = decode_record(&rec, &k).expect("clean record decodes");
        assert_eq!(cell.stats, stats);
        assert_eq!(cell.power, power);
    }

    #[test]
    fn every_single_byte_flip_is_detected() {
        let (stats, power) = sample();
        let k = key();
        let rec = encode_record(&k, &stats, &power);
        // Exhaustive over the whole record: header flips fail a header
        // check, payload flips fail the checksum.
        for i in 0..rec.len() {
            let mut bad = rec.clone();
            bad[i] ^= 0x40;
            assert!(decode_record(&bad, &k).is_none(), "flip at byte {i} must be a miss");
        }
    }

    #[test]
    fn every_truncation_is_detected() {
        let (stats, power) = sample();
        let k = key();
        let rec = encode_record(&k, &stats, &power);
        for len in 0..rec.len() {
            assert!(decode_record(&rec[..len], &k).is_none(), "truncation to {len} must miss");
        }
        // Trailing garbage too.
        let mut long = rec.clone();
        long.push(0);
        assert!(decode_record(&long, &k).is_none());
    }

    #[test]
    fn wrong_key_or_meta_is_a_miss() {
        let (stats, power) = sample();
        let k = key();
        let rec = encode_record(&k, &stats, &power);
        let mut other = KeyHasher::new();
        other.write_str("VOLREND");
        assert!(decode_record(&rec, &other.finish(k.meta.clone())).is_none());
        let renamed = CellKey { hash: k.hash, meta: "something else".into() };
        assert!(decode_record(&rec, &renamed).is_none());
    }

    #[test]
    fn corrupt_lengths_never_allocate_past_the_input() {
        // A payload claiming u64::MAX intervals must be rejected by the
        // sanity cap, not attempted.
        let (stats, power) = sample();
        let mut payload = encode_payload(&stats, &power);
        payload.truncate(16); // cycles + instructions
        payload.extend_from_slice(&u64::MAX.to_le_bytes()); // cores len
        assert!(decode_payload(&payload).is_none());
    }
}
