//! Content addressing: a stable, hand-rolled, dependency-free hash over
//! a canonical byte encoding of everything that determines a cell's
//! result.
//!
//! Two independent FNV-1a lanes (different offset basis, second lane
//! fed a whitened byte stream) give a 128-bit address — not
//! cryptographic, but the inputs are not adversarial and 128 bits make
//! accidental collisions across any realistic store negligible. The
//! hasher seeds itself with [`STORE_SCHEMA_VERSION`] and the build-time
//! [`code_fingerprint`], so a record format change *or* any simulation
//! source change re-addresses every cell — stale results become silent
//! misses by construction.

/// Version of the on-disk record layout (see [`crate::record`]). Bump
/// on any encoding change; old records then fail the header check and
/// fall back to fresh simulation.
pub const STORE_SCHEMA_VERSION: u32 = 1;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// The fingerprint of the workspace's simulation sources this binary
/// was built from (computed by `build.rs`, baked in at compile time).
pub fn code_fingerprint() -> &'static str {
    env!("CMPLEAK_CODE_FINGERPRINT")
}

/// The content address of one experiment cell: a 128-bit hash plus a
/// short human-readable descriptor that is stored in (and verified
/// against) every record, so even a hash collision cannot cross-label
/// results between obviously different cells.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellKey {
    pub(crate) hash: [u64; 2],
    /// Human-readable cell descriptor (scenario/technique/size/...).
    pub meta: String,
}

impl CellKey {
    /// 32-hex-digit content address (file-name material).
    pub fn hex(&self) -> String {
        format!("{:016x}{:016x}", self.hash[0], self.hash[1])
    }
}

/// Incremental key hasher. Feed the canonical encoding through the
/// typed writers (each is length- or width-delimited, so distinct
/// field sequences cannot alias), then [`KeyHasher::finish`].
#[derive(Debug, Clone)]
pub struct KeyHasher {
    a: u64,
    b: u64,
    len: u64,
}

impl KeyHasher {
    /// A hasher pre-seeded with the schema version and the code
    /// fingerprint.
    pub fn new() -> Self {
        let mut h = Self { a: FNV_OFFSET, b: FNV_OFFSET ^ 0x9e37_79b9_7f4a_7c15, len: 0 };
        h.write_u64(u64::from(STORE_SCHEMA_VERSION));
        h.write_str(code_fingerprint());
        h
    }

    /// Raw bytes (callers delimit; prefer the typed writers).
    pub fn write(&mut self, bytes: &[u8]) {
        for &x in bytes {
            self.a = (self.a ^ u64::from(x)).wrapping_mul(FNV_PRIME);
            self.b = (self.b ^ u64::from(x ^ 0xa5)).wrapping_mul(FNV_PRIME);
        }
        self.len += bytes.len() as u64;
    }

    /// A `u64`, little-endian.
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// An `f64` by bit pattern (exact: the store's identity contract is
    /// bitwise, so -0.0 and 0.0 are deliberately distinct).
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// A length-prefixed UTF-8 string.
    pub fn write_str(&mut self, s: &str) {
        self.write_u64(s.len() as u64);
        self.write(s.as_bytes());
    }

    /// A length-prefixed byte run.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        self.write_u64(bytes.len() as u64);
        self.write(bytes);
    }

    /// Close the hash over the total fed length and attach the
    /// human-readable descriptor.
    pub fn finish(mut self, meta: impl Into<String>) -> CellKey {
        let total = self.len;
        self.write_u64(total);
        CellKey { hash: [self.a, self.b], meta: meta.into() }
    }
}

impl Default for KeyHasher {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_input_identical_key() {
        let mut a = KeyHasher::new();
        let mut b = KeyHasher::new();
        for h in [&mut a, &mut b] {
            h.write_str("FMM/decay64K");
            h.write_u64(42);
            h.write_f64(4.0);
        }
        let (ka, kb) = (a.finish("m"), b.finish("m"));
        assert_eq!(ka, kb);
        assert_eq!(ka.hex(), kb.hex());
        assert_eq!(ka.hex().len(), 32);
    }

    #[test]
    fn any_field_perturbation_moves_the_address() {
        let base = || {
            let mut h = KeyHasher::new();
            h.write_str("FMM");
            h.write_u64(1);
            h.write_f64(0.5);
            h
        };
        let k0 = base().finish("m");
        let mut h = base();
        h.write_u64(0); // extra field
        assert_ne!(k0.hex(), h.finish("m").hex());
        let mut h = KeyHasher::new();
        h.write_str("FMN");
        h.write_u64(1);
        h.write_f64(0.5);
        assert_ne!(k0.hex(), h.finish("m").hex());
        let mut h = KeyHasher::new();
        h.write_str("FMM");
        h.write_u64(1);
        h.write_f64(-0.5);
        assert_ne!(k0.hex(), h.finish("m").hex());
    }

    #[test]
    fn delimiting_prevents_field_aliasing() {
        // ("ab", "c") must not collide with ("a", "bc").
        let mut a = KeyHasher::new();
        a.write_str("ab");
        a.write_str("c");
        let mut b = KeyHasher::new();
        b.write_str("a");
        b.write_str("bc");
        assert_ne!(a.finish("m").hex(), b.finish("m").hex());
    }

    #[test]
    fn meta_does_not_affect_the_address_but_is_carried() {
        let mk = |meta: &str| {
            let mut h = KeyHasher::new();
            h.write_u64(7);
            h.finish(meta)
        };
        let (a, b) = (mk("x"), mk("y"));
        assert_eq!(a.hex(), b.hex());
        assert_eq!(a.meta, "x");
        assert_ne!(a, b, "keys with different meta are distinct values");
    }

    #[test]
    fn fingerprint_is_baked_in() {
        assert_eq!(code_fingerprint().len(), 16);
        assert!(code_fingerprint().chars().all(|c| c.is_ascii_hexdigit()));
    }
}
