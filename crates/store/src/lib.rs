//! # cmpleak-store — content-addressed persistent result store
//!
//! The sweep-as-a-service substrate: experiment cells (`SimStats` +
//! `PowerReport`) are cached on disk under a 128-bit content address
//! derived from everything that determines the result — the canonical
//! `ExperimentConfig` encoding (scenario bytes, technique, L2 size,
//! budget, seed, core count, kernel/engine, power parameters), the
//! record schema version, and a build-time fingerprint of all
//! workspace simulation sources.
//!
//! ## Contract
//!
//! The store may only ever change *latency*, never *results*:
//!
//! - A loaded cell is byte-identical to what a fresh simulation would
//!   produce (pinned by the golden snapshot and the store differential
//!   test in the workspace).
//! - Any anomaly — missing file, truncation, bit corruption, schema or
//!   code-version skew, key mismatch — is a **silent miss** that falls
//!   back to fresh simulation. Decoding never panics on bad input.
//! - Publishing is atomic (temp file + rename) and best-effort: a
//!   failed write loses the warm-up, never the answer.

#![forbid(unsafe_code)]

pub mod hash;
pub mod record;
pub mod store;

pub use hash::{code_fingerprint, CellKey, KeyHasher, STORE_SCHEMA_VERSION};
pub use record::{decode_record, encode_record, StoredCell};
pub use store::ResultStore;
