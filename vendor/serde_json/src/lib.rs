//! Offline stand-in for `serde_json` over the `serde` stub's [`Value`]
//! model. Supports exactly what the workspace calls: `to_string` and
//! `to_string_pretty`.

use serde::{Serialize, Value};
use std::fmt;

/// Serialization error. The stub's value model is total, so this is
/// never actually produced, but the `Result` API shape is preserved.
#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                // Keep integral floats visibly floating-point, like serde_json.
                if f.fract() == 0.0 && f.abs() < 1e15 {
                    out.push_str(&format!("{f:.1}"));
                } else {
                    out.push_str(&f.to_string());
                }
            } else {
                out.push_str("null"); // JSON has no NaN/inf
            }
        }
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            if !items.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push(']');
        }
        Value::Object(fields) => {
            out.push('{');
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1);
            }
            if !fields.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(step) = indent {
        out.push('\n');
        for _ in 0..step * depth {
            out.push(' ');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_pretty() {
        let v = Value::Object(vec![
            ("name".into(), Value::String("fig3a".into())),
            ("vals".into(), Value::Array(vec![Value::Float(0.5), Value::UInt(3)])),
            ("empty".into(), Value::Array(vec![])),
        ]);
        let s = to_string_pretty(&v).unwrap();
        assert!(s.contains("\"name\": \"fig3a\""));
        assert!(s.contains("\"empty\": []"));
        let c = to_string(&v).unwrap();
        assert_eq!(c, r#"{"name":"fig3a","vals":[0.5,3],"empty":[]}"#);
    }

    #[test]
    fn escapes_strings() {
        let s = to_string(&Value::String("a\"b\\c\nd".into())).unwrap();
        assert_eq!(s, r#""a\"b\\c\nd""#);
    }
}
