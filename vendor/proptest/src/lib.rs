//! Offline stand-in for `proptest`, covering the API surface this
//! workspace uses: the `proptest!` macro, range/tuple/`Just`/`any`
//! strategies, `prop_map`, `prop_oneof!`, `proptest::collection::vec`,
//! and the `prop_assert*` macros.
//!
//! Differences from real proptest, by design:
//!
//! * **No shrinking.** A failing case reports the generated inputs
//!   verbatim; with deterministic seeding the same case replays on the
//!   next run, which is enough for a CI debugging loop.
//! * **Deterministic seeding.** Case `i` of test `t` is seeded from
//!   `fnv(module_path::t) ^ splitmix(i)`, so failures reproduce
//!   bit-for-bit across runs and machines (the workspace-wide
//!   reproducibility contract in EXPERIMENTS.md).
//! * Case count defaults to 64; override with `PROPTEST_CASES`.

pub mod collection;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

pub mod arbitrary {
    pub use crate::strategy::{any, Arbitrary};
}

/// Runs each property function over `PROPTEST_CASES` generated cases
/// (default 64). Panics — with the generated inputs — on the first
/// failing case.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cases = $crate::test_runner::case_count();
                for case in 0..cases {
                    let mut rng = $crate::test_runner::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        case,
                    );
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    let inputs = format!(
                        concat!($("\n  ", stringify!($arg), " = {:?}"),+),
                        $(&$arg),+
                    );
                    let outcome = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(
                            move || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                                $body
                                Ok(())
                            },
                        ),
                    );
                    match outcome {
                        Ok(Ok(())) => {}
                        Ok(Err(e)) => panic!(
                            "proptest case {case}/{cases} failed: {e}\ninputs:{inputs}"
                        ),
                        Err(payload) => {
                            eprintln!(
                                "proptest case {case}/{cases} panicked; inputs:{inputs}"
                            );
                            ::std::panic::resume_unwind(payload);
                        }
                    }
                }
            }
        )+
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        $crate::prop_assert_eq!($left, $right, "values differ")
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                        format!("{}: left = {:?}, right = {:?}", format!($($fmt)+), l, r),
                    ));
                }
            }
        }
    };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        $crate::prop_assert_ne!($left, $right, "values must differ")
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (l, r) => {
                if *l == *r {
                    return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                        format!("{}: both = {:?}", format!($($fmt)+), l),
                    ));
                }
            }
        }
    };
}

/// Uniform choice between strategies of the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::boxed($strat)),+
        ])
    };
}
