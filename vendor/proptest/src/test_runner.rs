//! Deterministic RNG and failure plumbing for the proptest stub.

use std::fmt;

/// Number of cases per property; `PROPTEST_CASES` overrides.
pub fn case_count() -> u32 {
    std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(64)
}

/// A failed `prop_assert*`.
#[derive(Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    pub fn fail(msg: String) -> Self {
        Self(msg)
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// splitmix64-based generator, seeded deterministically per (test, case).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn for_case(test_name: &str, case: u32) -> Self {
        // FNV-1a over the fully qualified test name, mixed with the case
        // index, so every (test, case) pair has an independent stream.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        let mut rng = Self { state: h ^ splitmix(case as u64 + 1) };
        rng.next_u64(); // decorrelate nearby seeds
        rng
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        splitmix(self.state)
    }

    /// Uniform value in `[0, n)`; `n` must be non-zero.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "empty range");
        // Lemire-style widening multiply avoids modulo bias well enough
        // for test generation.
        (((self.next_u64() as u128) * (n as u128)) >> 64) as u64
    }

    pub fn gen_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

fn splitmix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}
