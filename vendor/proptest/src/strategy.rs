//! Strategies: composable value generators.

use crate::test_runner::TestRng;
use std::fmt::Debug;
use std::marker::PhantomData;
use std::ops::Range;

/// A generator of values for one property input.
///
/// Unlike real proptest there is no value tree / shrinking; `generate`
/// produces the final value directly.
pub trait Strategy {
    type Value: Debug;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<T: Debug, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Type-erase a strategy (building block of [`prop_oneof!`]).
pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
where
    S: Strategy + 'static,
{
    Box::new(s)
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `strategy.prop_map(f)`.
#[derive(Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Debug, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice among type-erased strategies (see [`prop_oneof!`]).
pub struct Union<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> std::fmt::Debug for Union<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Union({} options)", self.options.len())
    }
}

impl<T: Debug> Union<T> {
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!options.is_empty());
        Self { options }
    }
}

impl<T: Debug> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

/// Types with a canonical strategy, reachable through [`any`].
pub trait Arbitrary: Debug + Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen_bool()
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The canonical strategy for `T` (`any::<bool>()`, `any::<u64>()`, …).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

#[derive(Debug)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + rng.below(span) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+)),+ $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}
impl_tuple_strategy!((A.0, B.1), (A.0, B.1, C.2), (A.0, B.1, C.2, D.3),);
