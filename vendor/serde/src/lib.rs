//! Offline stand-in for `serde`, sufficient for this workspace.
//!
//! Real serde serializes through a visitor (`Serializer`); this stub
//! lowers everything to a JSON-shaped [`Value`] tree instead, which the
//! companion `serde_json` stub renders. The `#[derive(Serialize)]`
//! macro (from the `serde_derive` stub) targets this trait.

pub use serde_derive::Serialize;

/// A JSON-shaped intermediate value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Int(i64),
    UInt(u64),
    Float(f64),
    String(String),
    Array(Vec<Value>),
    Object(Vec<(String, Value)>),
}

/// Types that can lower themselves to a [`Value`].
pub trait Serialize {
    fn to_value(&self) -> Value;
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
    )*};
}
macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
    )*};
}
impl_uint!(u8, u16, u32, u64, usize);
impl_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}
