//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` for the shapes this workspace
//! actually uses — structs with named fields and enums with unit
//! variants — by hand-parsing the token stream (no `syn`/`quote`; the
//! build must work with an empty crates.io cache). Anything else gets a
//! `compile_error!` pointing here.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match generate(input) {
        Ok(out) => out.parse().expect("serde_derive stub emitted invalid Rust"),
        Err(msg) => format!("compile_error!({msg:?});").parse().unwrap(),
    }
}

fn generate(input: TokenStream) -> Result<String, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut kind = None;
    let mut name = None;
    let mut body = None;
    let mut i = 0;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Ident(id) if matches!(id.to_string().as_str(), "struct" | "enum") => {
                kind = Some(id.to_string());
                if let Some(TokenTree::Ident(n)) = tokens.get(i + 1) {
                    name = Some(n.to_string());
                }
                for t in &tokens[i + 1..] {
                    if let TokenTree::Group(g) = t {
                        if g.delimiter() == Delimiter::Brace {
                            body = Some(g.stream());
                            break;
                        }
                    }
                }
                break;
            }
            _ => i += 1,
        }
    }
    let (kind, name, body) = match (kind, name, body) {
        (Some(k), Some(n), Some(b)) => (k, n, b),
        _ => {
            return Err("serde stub: could not parse item (expected struct/enum with braces)".into())
        }
    };
    if kind == "struct" {
        let fields = field_names(body)?;
        let entries: Vec<String> = fields
            .iter()
            .map(|f| {
                format!(
                    "(::std::string::String::from({f:?}), ::serde::Serialize::to_value(&self.{f}))"
                )
            })
            .collect();
        Ok(format!(
            "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n\
                     ::serde::Value::Object(::std::vec![{}])\n\
                 }}\n\
             }}",
            entries.join(", ")
        ))
    } else {
        let variants = variant_names(body)?;
        let arms: Vec<String> = variants
            .iter()
            .map(|v| {
                format!("{name}::{v} => ::serde::Value::String(::std::string::String::from({v:?}))")
            })
            .collect();
        Ok(format!(
            "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n\
                     match self {{ {} }}\n\
                 }}\n\
             }}",
            arms.join(", ")
        ))
    }
}

/// Split a brace-group body at top-level commas, tracking `<...>` depth
/// so commas inside generic arguments (e.g. `HashMap<String, u64>`)
/// don't split a field.
fn split_top_level(body: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut chunks = vec![Vec::new()];
    let mut angle = 0i32;
    for t in body {
        match &t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                chunks.push(Vec::new());
                continue;
            }
            _ => {}
        }
        chunks.last_mut().unwrap().push(t);
    }
    chunks.retain(|c| !c.is_empty());
    chunks
}

/// Strip leading `#[...]` attributes and `pub` / `pub(...)` visibility
/// from a field or variant chunk.
fn strip_attrs_and_vis(chunk: &[TokenTree]) -> &[TokenTree] {
    let mut rest = chunk;
    loop {
        match rest {
            [TokenTree::Punct(p), TokenTree::Group(_), tail @ ..] if p.as_char() == '#' => {
                rest = tail;
            }
            [TokenTree::Ident(id), TokenTree::Group(g), tail @ ..]
                if id.to_string() == "pub" && g.delimiter() == Delimiter::Parenthesis =>
            {
                rest = tail;
            }
            [TokenTree::Ident(id), tail @ ..] if id.to_string() == "pub" => {
                rest = tail;
            }
            _ => return rest,
        }
    }
}

fn field_names(body: TokenStream) -> Result<Vec<String>, String> {
    split_top_level(body)
        .iter()
        .map(|chunk| match strip_attrs_and_vis(chunk) {
            [TokenTree::Ident(f), TokenTree::Punct(c), ..] if c.as_char() == ':' => {
                Ok(f.to_string())
            }
            _ => Err("serde stub: only structs with named fields are supported".into()),
        })
        .collect()
}

fn variant_names(body: TokenStream) -> Result<Vec<String>, String> {
    split_top_level(body)
        .iter()
        .map(|chunk| match strip_attrs_and_vis(chunk) {
            [TokenTree::Ident(v)] => Ok(v.to_string()),
            _ => Err("serde stub: only enums with unit variants are supported".into()),
        })
        .collect()
}
