//! Offline stand-in for `criterion`, covering the surface the bench
//! harness uses: `criterion_group!`/`criterion_main!`, benchmark groups
//! with `measurement_time`/`sample_size`, `Bencher::iter` and
//! `iter_batched`, and `black_box`.
//!
//! Measurement model: per benchmark, a short warm-up sizes the batch so
//! one sample takes ~1 ms, then samples are collected until the group's
//! measurement time (capped — this is a smoke-grade harness, not a
//! statistics engine) and the median ns/iter is reported on stdout in a
//! stable grep-friendly format:
//!
//! ```text
//! bench: group/name ... 1234 ns/iter (median of 57 samples)
//! ```
//!
//! CLI: `--quick` shrinks measurement time ~10x; a bare positional
//! argument filters benchmarks by substring; cargo's own `--bench` flag
//! and any other unknown flags are ignored.

pub use std::hint::black_box;
use std::time::{Duration, Instant};

/// Top-level benchmark driver, one per bench binary.
#[derive(Debug, Clone, Default)]
pub struct Criterion {
    quick: bool,
    filter: Option<String>,
}

impl Criterion {
    /// Build from the process arguments (tolerates cargo's `--bench`).
    pub fn from_args() -> Self {
        let mut c = Self::default();
        for a in std::env::args().skip(1) {
            match a.as_str() {
                "--quick" => c.quick = true,
                s if s.starts_with("--") => {} // cargo/compat flags: ignore
                s => c.filter = Some(s.to_string()),
            }
        }
        c
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            measurement_time: Duration::from_secs(3),
            sample_size: 20,
        }
    }

    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        let mut g = self.benchmark_group(String::new());
        g.bench_function(id, f);
        g.finish();
        self
    }
}

/// A named group of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    measurement_time: Duration,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        let full = if self.name.is_empty() { id } else { format!("{}/{}", self.name, id) };
        if let Some(filter) = &self.criterion.filter {
            if !full.contains(filter.as_str()) {
                return self;
            }
        }
        // Cap the budget: the stub reports a trend line, it does not owe
        // criterion-grade confidence intervals.
        let budget = if self.criterion.quick {
            Duration::from_millis(100)
        } else {
            self.measurement_time.min(Duration::from_secs(3))
        };
        let mut b = Bencher { budget, samples: Vec::new() };
        f(&mut b);
        b.report(&full);
        self
    }

    pub fn finish(self) {}
}

/// Collects timing samples for one benchmark.
#[derive(Debug)]
pub struct Bencher {
    budget: Duration,
    samples: Vec<f64>, // ns per iteration
}

/// Batch sizing hint for [`Bencher::iter_batched`]; the stub only uses
/// it to pick how many setup outputs to pre-build per sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

impl Bencher {
    /// Time `f`, called in adaptively sized batches.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        // Warm-up: find a batch size where one sample takes ~1 ms.
        let mut batch = 1u64;
        loop {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let dt = t0.elapsed();
            if dt >= Duration::from_millis(1) || batch >= 1 << 20 {
                break;
            }
            batch *= 2;
        }
        let deadline = Instant::now() + self.budget;
        while Instant::now() < deadline {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            self.samples.push(t0.elapsed().as_nanos() as f64 / batch as f64);
        }
        if self.samples.is_empty() {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            self.samples.push(t0.elapsed().as_nanos() as f64 / batch as f64);
        }
    }

    /// Time `routine` over inputs produced by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        let deadline = Instant::now() + self.budget;
        loop {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            self.samples.push(t0.elapsed().as_nanos() as f64);
            if Instant::now() >= deadline {
                break;
            }
        }
    }

    fn report(&mut self, name: &str) {
        if self.samples.is_empty() {
            println!("bench: {name} ... no samples");
            return;
        }
        self.samples.sort_by(|a, b| a.total_cmp(b));
        let median = self.samples[self.samples.len() / 2];
        println!(
            "bench: {name} ... {median:.0} ns/iter (median of {} samples)",
            self.samples.len()
        );
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($f:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::from_args();
            $($f(&mut c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
