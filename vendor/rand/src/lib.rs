//! Offline stand-in for `rand`. The workspace's simulator never uses
//! OS randomness (determinism contract, see EXPERIMENTS.md); this stub
//! exists so dev-tooling can take a `rand` dependency without touching
//! the network. Only a minimal seedable generator is provided.

use std::ops::Range;

pub trait Rng {
    fn next_u64(&mut self) -> u64;

    fn gen_range(&mut self, r: Range<u64>) -> u64 {
        assert!(r.start < r.end);
        let span = r.end - r.start;
        r.start + (((self.next_u64() as u128 * span as u128) >> 64) as u64)
    }

    fn gen_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    /// splitmix64: tiny, fast, and plenty for test scaffolding.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: u64,
    }

    impl crate::SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            Self { state: seed.wrapping_add(0x9e37_79b9_7f4a_7c15) }
        }
    }

    impl crate::Rng for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}
